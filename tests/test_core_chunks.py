"""Chunk ledger: assignment, reassembly, out-of-order, failure requeue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chunks import ChunkLedger
from repro.errors import PlayerError
from repro.http.ranges import ByteRange


class TestAssignment:
    def test_sequential_frontier_extension(self):
        ledger = ChunkLedger(1000)
        a = ledger.assign(0, 300)
        b = ledger.assign(1, 300)
        assert a.byte_range == ByteRange(0, 300)
        assert b.byte_range == ByteRange(300, 600)

    def test_last_chunk_truncated_at_eof(self):
        ledger = ChunkLedger(500)
        ledger.assign(0, 400)
        assignment = ledger.assign(1, 400)
        assert assignment.byte_range == ByteRange(400, 500)

    def test_no_work_left_returns_none(self):
        ledger = ChunkLedger(100)
        ledger.assign(0, 100)
        assert ledger.assign(1, 100) is None
        assert ledger.fully_assigned

    def test_one_assignment_per_path(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 100)
        with pytest.raises(PlayerError):
            ledger.assign(0, 100)

    def test_invalid_size_rejected(self):
        with pytest.raises(PlayerError):
            ChunkLedger(100).assign(0, 0)

    def test_invalid_total_rejected(self):
        with pytest.raises(PlayerError):
            ChunkLedger(0)


class TestCompletion:
    def test_in_order_completion_advances_frontier(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 300)
        ledger.complete_assignment(0)
        assert ledger.contiguous_frontier == 300

    def test_out_of_order_held_then_absorbed(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 300)
        ledger.assign(1, 300)
        ledger.complete_assignment(1)  # bytes 300-600 before 0-300
        assert ledger.contiguous_frontier == 0
        assert ledger.out_of_order_count == 1
        ledger.complete_assignment(0)
        assert ledger.contiguous_frontier == 600
        assert ledger.out_of_order_count == 0

    def test_peak_out_of_order_recorded(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 100)
        ledger.assign(1, 100)
        ledger.complete_assignment(1)
        assert ledger.peak_out_of_order == 1

    def test_complete_without_assignment_rejected(self):
        with pytest.raises(PlayerError):
            ChunkLedger(100).complete_assignment(0)

    def test_completion_marks_complete(self):
        ledger = ChunkLedger(200)
        ledger.assign(0, 200)
        ledger.complete_assignment(0)
        assert ledger.complete
        assert ledger.remaining_bytes == 0

    def test_bytes_by_path(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 600)
        ledger.assign(1, 400)
        ledger.complete_assignment(0)
        ledger.complete_assignment(1)
        assert ledger.bytes_by_path == {0: 600, 1: 400}
        assert ledger.traffic_fraction(0) == pytest.approx(0.6)


class TestFailure:
    def test_failed_chunk_requeued_and_served_first(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 300)
        ledger.assign(1, 300)
        ledger.fail_assignment(0)  # [0,300) back to the queue
        # Path 1 still has its chunk in flight; path 0 redials and gets
        # the requeued range (possibly split to its chunk size).
        assignment = ledger.assign(0, 200)
        assert assignment.byte_range == ByteRange(0, 200)

    def test_partial_delivery_kept(self):
        # HTTP bodies arrive in order: a prefix survives the failure.
        ledger = ChunkLedger(1000)
        ledger.assign(0, 400)
        remainder = ledger.fail_assignment(0, bytes_delivered=150)
        assert remainder == ByteRange(150, 400)
        assert ledger.contiguous_frontier == 150
        assert ledger.bytes_by_path[0] == 150

    def test_fully_delivered_failure_is_noop(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 400)
        assert ledger.fail_assignment(0, bytes_delivered=400) is None
        assert ledger.contiguous_frontier == 400

    def test_requeued_range_split_across_chunks(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 600)
        ledger.fail_assignment(0)
        first = ledger.assign(1, 250)
        ledger.complete_assignment(1)
        second = ledger.assign(1, 250)
        assert first.byte_range == ByteRange(0, 250)
        assert second.byte_range == ByteRange(250, 500)

    def test_invalid_bytes_delivered_rejected(self):
        ledger = ChunkLedger(1000)
        ledger.assign(0, 100)
        with pytest.raises(PlayerError):
            ledger.fail_assignment(0, bytes_delivered=200)

    def test_fail_without_assignment_rejected(self):
        with pytest.raises(PlayerError):
            ChunkLedger(100).fail_assignment(0)


operations = st.lists(
    st.tuples(
        st.sampled_from(["assign", "complete", "fail", "fail_partial"]),
        st.integers(min_value=0, max_value=1),  # path id
        st.integers(min_value=1, max_value=5000),  # size / partial bytes
    ),
    max_size=80,
)


class TestLedgerInvariantsProperty:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=50_000), operations)
    def test_random_walk_preserves_invariants(self, total, ops):
        # The walk applies the same assignment gate PlayerSession does
        # (§2: at most `max_out_of_order` completed-but-gapped chunks):
        # the ledger *measures* out-of-order accumulation, the session
        # bounds it, and without the gate the bound genuinely does not
        # hold (one path stalled forever while the other keeps
        # completing later ranges grows the backlog without limit).
        max_out_of_order = 1
        ledger = ChunkLedger(total)
        for kind, path_id, amount in ops:
            in_flight = ledger.in_flight_for(path_id)
            if kind == "assign" and in_flight is None:
                if ledger.out_of_order_count >= max_out_of_order:
                    next_start = ledger.peek_next_start()
                    if next_start is None or next_start > ledger.contiguous_frontier:
                        continue
                ledger.assign(path_id, amount)
            elif kind == "complete" and in_flight is not None:
                ledger.complete_assignment(path_id)
            elif kind == "fail" and in_flight is not None:
                ledger.fail_assignment(path_id)
            elif kind == "fail_partial" and in_flight is not None:
                partial = min(amount, in_flight.byte_range.length)
                ledger.fail_assignment(path_id, bytes_delivered=partial)

            assert 0 <= ledger.contiguous_frontier <= total
            assert ledger.remaining_bytes >= 0
            assert ledger.out_of_order_count <= 2  # two paths max

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=20_000), st.integers(min_value=1, max_value=3000))
    def test_drain_to_completion_no_gaps_no_duplicates(self, total, chunk):
        # Alternate paths, complete everything: exactly `total` bytes
        # delivered once each.
        ledger = ChunkLedger(total)
        path = 0
        while not ledger.complete:
            assignment = ledger.assign(path, chunk)
            if assignment is None:
                # The other path must still hold the last piece.
                other = 1 - path
                if ledger.in_flight_for(other):
                    ledger.complete_assignment(other)
                path = other
                continue
            ledger.complete_assignment(path)
            path = 1 - path
        assert ledger.contiguous_frontier == total
        assert sum(ledger.bytes_by_path.values()) == total
