"""Interfaces, hosts, routing binding, DNS."""

import pytest

from repro.errors import ConfigError, DNSError, LinkDownError, RoutingError, ServerUnavailableError
from repro.net.bandwidth import ConstantBandwidth
from repro.net.dns import StubResolver
from repro.net.iface import NetworkInterface
from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.net.topology import Host, Network
from repro.units import mbit


def make_iface(env, name="wlan0", kind="wifi", delay=0.010, network_id="wifi-net"):
    link = Link(env, ConstantBandwidth(mbit(10)), name=f"{name}-link")
    return NetworkInterface(
        env, name, kind, link, ConstantLatency(delay), network_id, "10.0.0.2"
    )


class TestInterface:
    def test_unknown_kind_rejected(self, env):
        with pytest.raises(ConfigError):
            make_iface(env, kind="carrier-pigeon")

    def test_open_connection_binds_to_link(self, env):
        iface = make_iface(env)
        connection = iface.open_connection()
        assert connection.link is iface.link

    def test_down_interface_refuses_connections(self, env):
        iface = make_iface(env)
        iface.set_up(False)
        with pytest.raises(LinkDownError):
            iface.open_connection()

    def test_down_resets_existing_flows(self, env):
        iface = make_iface(env)
        flow = iface.link.start_flow(10_000_000)
        iface.set_up(False)
        assert not flow.active

    def test_status_listeners(self, env):
        iface = make_iface(env)
        events = []
        iface.status_listeners.append(events.append)
        iface.set_up(False)
        iface.set_up(True)
        assert events == [True, False]

    def test_connection_names_unique(self, env):
        iface = make_iface(env)
        names = {iface.open_connection().name for _ in range(3)}
        assert len(names) == 3


class TestNetworkAndHosts:
    def test_connect_reaches_host(self, env):
        network = Network(env)
        network.add_host(Host("server.example", network_id="wifi-net"))
        iface = make_iface(env)
        connection, host = network.connect(iface, "server.example")
        assert host.address == "server.example"
        assert connection.link is iface.link

    def test_host_distance_adds_latency(self, env):
        network = Network(env)
        network.add_host(Host("far.example", extra_one_way_delay=0.040))
        iface = make_iface(env, delay=0.010)
        connection, _ = network.connect(iface, "far.example")
        assert connection.latency.base_delay == pytest.approx(0.050)

    def test_unknown_host_is_routing_error(self, env):
        network = Network(env)
        with pytest.raises(RoutingError):
            network.connect(make_iface(env), "nowhere.example")

    def test_duplicate_host_rejected(self, env):
        network = Network(env)
        network.add_host(Host("a.example"))
        with pytest.raises(ConfigError):
            network.add_host(Host("a.example"))

    def test_down_host_refuses_connections(self, env):
        network = Network(env)
        host = network.add_host(Host("dead.example"))
        host.fail()
        with pytest.raises(ServerUnavailableError):
            network.connect(make_iface(env), "dead.example")

    def test_host_failure_resets_tracked_connections(self, env):
        network = Network(env)
        host = network.add_host(Host("flaky.example"))
        iface = make_iface(env)
        connection, _ = network.connect(iface, "flaky.example")

        def main(env):
            yield env.process(connection.connect())
            host.fail()
            return connection.closed

        process = env.process(main(env))
        env.run(process)
        assert process.value is True

    def test_hosts_in_network_filter(self, env):
        network = Network(env)
        network.add_host(Host("a", network_id="wifi-net"))
        network.add_host(Host("b", network_id="lte-net"))
        network.add_host(Host("c", network_id="wifi-net"))
        assert {h.address for h in network.hosts_in_network("wifi-net")} == {"a", "c"}

    def test_recover_after_failure(self, env):
        network = Network(env)
        host = network.add_host(Host("phoenix.example"))
        host.fail()
        host.recover()
        connection, _ = network.connect(make_iface(env), "phoenix.example")
        assert connection is not None


class TestStubResolver:
    def test_resolution_charges_latency(self, env):
        resolver = StubResolver(env, lookup_delay=0.030)
        resolver.add_record("www.youtube.example", ["proxy1"])

        def main(env):
            answer = yield from resolver.resolve("www.youtube.example")
            return answer

        process = env.process(main(env))
        env.run(process)
        assert process.value == ["proxy1"]
        assert env.now == pytest.approx(0.030)

    def test_per_network_records(self, env):
        resolver = StubResolver(env, lookup_delay=0.0)
        resolver.add_record("cdn", ["wifi-server"], network_id="wifi-net")
        resolver.add_record("cdn", ["lte-server"], network_id="lte-net")
        assert resolver.resolve_now("cdn", "wifi-net") == ["wifi-server"]
        assert resolver.resolve_now("cdn", "lte-net") == ["lte-server"]

    def test_global_fallback(self, env):
        resolver = StubResolver(env)
        resolver.add_record("cdn", ["anywhere"])
        assert resolver.resolve_now("cdn", "some-net") == ["anywhere"]

    def test_nxdomain(self, env):
        resolver = StubResolver(env)
        with pytest.raises(DNSError):
            resolver.resolve_now("missing.example")

    def test_cache_hit_skips_latency(self, env):
        resolver = StubResolver(env, lookup_delay=0.030)
        resolver.add_record("cdn", ["x"])

        def main(env):
            yield from resolver.resolve("cdn")
            before = env.now
            answer = yield from resolver.resolve("cdn")
            return env.now - before, answer

        process = env.process(main(env))
        env.run(process)
        elapsed, answer = process.value
        assert elapsed == 0.0
        assert answer == ["x"]
        assert resolver.hits == 1 and resolver.misses == 1

    def test_empty_record_rejected(self, env):
        resolver = StubResolver(env)
        with pytest.raises(ConfigError):
            resolver.add_record("cdn", [])
