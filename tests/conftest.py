"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PlayerConfig
from repro.net.bandwidth import ConstantBandwidth
from repro.net.env import Environment
from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.units import mbit


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(12345))


@pytest.fixture
def config() -> PlayerConfig:
    return PlayerConfig()


def make_link(env: Environment, mbps: float = 10.0, name: str = "link") -> Link:
    """A constant-capacity link helper used across net tests."""
    return Link(env, ConstantBandwidth(mbit(mbps)), name=name)


@pytest.fixture
def link(env: Environment) -> Link:
    return make_link(env)


@pytest.fixture
def latency() -> ConstantLatency:
    return ConstantLatency(0.010)  # RTT 20 ms


def assert_batches_identical(a, b) -> None:
    """Two OutcomeBatches hold bit-identical columns (dtypes included).

    The acceptance bar for every collection path (serial, process-
    pickle, process-shm) and both assembly paths (``from_outcomes``,
    ``from_dense_and_sides``): not statistically close — the same bits.
    Delegates to ``OutcomeBatch.column_mismatches`` so the column
    enumeration and comparison semantics live in one place.
    """
    assert a.column_mismatches(b) == [], (
        f"columns differ between batches: {a.column_mismatches(b)}"
    )
