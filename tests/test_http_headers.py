"""Case-insensitive header multimap."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HTTPParseError
from repro.http.headers import Headers

header_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-",
    min_size=1,
    max_size=24,
)
header_values = st.text(
    alphabet=st.characters(blacklist_characters="\r\n", min_codepoint=32, max_codepoint=126),
    max_size=64,
)


class TestBasics:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "video/mp4")])
        assert headers["CONTENT-TYPE"] == "video/mp4"
        assert headers.get("content-type") == "video/mp4"

    def test_original_spelling_preserved(self):
        headers = Headers([("X-WeIrD", "v")])
        assert list(headers) == [("X-WeIrD", "v")]

    def test_get_default(self):
        assert Headers().get("missing", "-") == "-"

    def test_getitem_keyerror(self):
        with pytest.raises(KeyError):
            Headers()["nope"]

    def test_add_keeps_duplicates(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("set-cookie") == ["a=1", "b=2"]

    def test_set_replaces_all(self):
        headers = Headers([("X", "1"), ("x", "2")])
        headers.set("X", "3")
        assert headers.get_all("x") == ["3"]

    def test_remove(self):
        headers = Headers([("A", "1"), ("B", "2")])
        headers.remove("a")
        assert "A" not in headers and "B" in headers

    def test_contains_and_len(self):
        headers = Headers([("A", "1")])
        assert "a" in headers and len(headers) == 1

    def test_get_int(self):
        assert Headers([("Content-Length", " 42 ")]).get_int("content-length") == 42

    def test_get_int_missing_is_none(self):
        assert Headers().get_int("content-length") is None

    def test_get_int_garbage_raises(self):
        with pytest.raises(HTTPParseError):
            Headers([("Content-Length", "many")]).get_int("content-length")

    def test_equality_case_insensitive_names(self):
        assert Headers([("A", "1")]) == Headers([("a", "1")])
        assert Headers([("A", "1")]) != Headers([("A", "2")])

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        clone = original.copy()
        clone.set("A", "2")
        assert original["A"] == "1"


class TestValidation:
    def test_crlf_injection_rejected(self):
        with pytest.raises(HTTPParseError):
            Headers([("X", "evil\r\nInjected: yes")])

    def test_empty_name_rejected(self):
        with pytest.raises(HTTPParseError):
            Headers([("", "v")])

    def test_colon_in_name_rejected(self):
        with pytest.raises(HTTPParseError):
            Headers([("a:b", "v")])

    def test_space_in_name_rejected(self):
        with pytest.raises(HTTPParseError):
            Headers([("a b", "v")])


class TestWire:
    def test_encode_format(self):
        headers = Headers([("Host", "example"), ("Range", "bytes=0-1")])
        assert headers.encode() == b"Host: example\r\nRange: bytes=0-1\r\n"

    def test_wire_size_matches_encode(self):
        headers = Headers([("Host", "example"), ("A", ""), ("Long-Header", "x" * 50)])
        assert headers.wire_size() == len(headers.encode())

    @given(st.lists(st.tuples(header_names, header_values), max_size=8))
    def test_wire_size_always_matches_encode(self, items):
        headers = Headers(items)
        assert headers.wire_size() == len(headers.encode())
