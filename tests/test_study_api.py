"""The ``Study`` facade: validation, grids, merged submission.

The acceptance bar: grid cells are byte-identical to running each cell
as its own study (the merged submission only changes scheduling), on
the serial and process backends alike.
"""

import pytest

from repro.errors import ConfigError
from repro.ext.population import PopulationCampaign
from repro.sim.campaign import Campaign, run_together
from repro.sim.execution import SerialEngine
from repro.study import Study, get_experiment


class TestStudyConstruction:
    def test_bad_param_dies_at_construction(self):
        with pytest.raises(ConfigError, match="trials"):
            Study("fig2", trials=0)

    def test_unknown_param_dies_at_construction(self):
        with pytest.raises(ConfigError, match="clients"):
            Study("fig2", clients=5)

    def test_accepts_definition_object(self):
        study = Study(get_experiment("x3"), samples=60)
        assert study.experiment_id == "x3"
        assert study.params["samples"] == 60

    def test_string_values_coerced_through_schema(self):
        study = Study("fig3", chunks="64KB,1MB", trials="2")
        assert study.params["chunks"] == (65536, 1048576)
        assert study.params["trials"] == 2


class TestGrid:
    def test_grid_axis_must_be_a_schema_param(self):
        with pytest.raises(ConfigError, match="clients"):
            Study("fig2").grid(clients=[1, 2])

    def test_grid_axis_cannot_be_empty(self):
        with pytest.raises(ConfigError, match="empty"):
            Study("fig2").grid(seed=[])

    def test_cells_product_order_last_axis_fastest(self):
        grid = Study("fig2", trials=1).grid(seed=[1, 2], trials=[3, 4])
        assert grid.cells() == [
            {"seed": 1, "trials": 3},
            {"seed": 1, "trials": 4},
            {"seed": 2, "trials": 3},
            {"seed": 2, "trials": 4},
        ]
        assert len(grid) == 4

    def test_grid_does_not_mutate_the_base_study(self):
        base = Study("fig2", trials=1)
        grid = base.grid(seed=[1, 2])
        assert len(base) == 1 and len(grid) == 2

    def test_grid_values_coerced(self):
        grid = Study("fig3", trials=1).grid(chunks=["64KB", "1MB,16KB"])
        assert grid.cells() == [
            {"chunks": (65536,)},
            {"chunks": (1048576, 16384)},
        ]


class TestGridExecution:
    @pytest.fixture(scope="class")
    def merged(self):
        return (
            Study("fig2", trials=2)
            .grid(seed=[2014, 2015], trials=[2, 3])
            .run()
        )

    def test_grid_over_two_params_runs_every_cell(self, merged):
        assert len(merged.cells) == 4
        assert merged.axes == {"seed": [2014, 2015], "trials": [2, 3]}

    def test_cells_byte_identical_to_solo_runs(self, merged):
        import numpy as np

        for cell in merged.cells:
            solo_cell = Study("fig2", **cell.params).run().only()
            assert cell.result.rendered == solo_cell.result.rendered
            assert cell.result.raw == solo_cell.result.raw
            # Same-cell dense columns are bit-identical (NaN == NaN).
            for label, columns in cell.columns.items():
                for name, column in columns.items():
                    other = solo_cell.columns[label][name]
                    assert column.dtype == other.dtype, (label, name)
                    assert np.array_equal(
                        column, other, equal_nan=column.dtype.kind == "f"
                    ), (label, name)

    def test_process_backend_matches_serial(self, merged):
        parallel = (
            Study("fig2", trials=2)
            .grid(seed=[2014, 2015], trials=[2, 3])
            .run(jobs=2)
        )
        assert parallel.rendered == merged.rendered
        assert merged.column_mismatches(parallel) == []

    def test_cell_lookup_by_coordinates(self, merged):
        cell = merged.cell(seed=2015, trials=3)
        assert cell.params["seed"] == 2015 and cell.params["trials"] == 3
        with pytest.raises(ConfigError, match="axes"):
            merged.cell(prebuffers=20)

    def test_only_rejects_grids(self, merged):
        with pytest.raises(ConfigError, match="4 cells"):
            merged.only()

    def test_rendered_labels_grid_cells(self, merged):
        assert merged.rendered.count("=== fig2 [") == 4


class TestRunTogether:
    def test_mixed_campaign_kinds_rejected(self):
        trial_campaign = get_experiment("fig2").build(
            get_experiment("fig2").schema.resolve({"trials": 1})
        ).campaign
        population_campaign = get_experiment("x6").build(
            get_experiment("x6").schema.resolve({"replicates": 1, "clients": 2})
        ).campaign
        assert isinstance(trial_campaign, Campaign)
        assert isinstance(population_campaign, PopulationCampaign)
        with pytest.raises(ConfigError, match="same-kind"):
            run_together([trial_campaign, population_campaign], SerialEngine())

    def test_empty_input_is_empty_output(self):
        assert run_together([], SerialEngine()) == []

    def test_single_campaign_equals_campaign_run(self):
        params = get_experiment("x3").schema.resolve({"samples": 60})
        solo = get_experiment("x3").build(params).campaign.run()
        together = run_together(
            [get_experiment("x3").build(params).campaign], SerialEngine()
        )[0]
        assert sorted(solo) == sorted(together)
        for label in solo:
            assert solo[label].mean_error == together[label].mean_error


class TestRunTogetherSkip:
    """The cache-aware partial-submission path (``skip=``)."""

    def _campaigns(self, count=2):
        definition = get_experiment("fig2")
        return [
            definition.build(
                definition.schema.resolve({"trials": 2, "seed": 2014 + offset})
            ).campaign
            for offset in range(count)
        ]

    def test_skipped_slots_are_none_others_unchanged(self):
        campaigns = self._campaigns(3)
        full = run_together(self._campaigns(3), SerialEngine())
        partial = run_together(campaigns, SerialEngine(), skip=[1])
        assert partial[1] is None
        for index in (0, 2):
            assert sorted(partial[index]) == sorted(full[index])
            for label in full[index]:
                assert (
                    partial[index][label].startup_delays()
                    == full[index][label].startup_delays()
                )

    def test_fully_skipped_call_never_touches_the_engine(self):
        class ExplodingEngine(SerialEngine):
            def map(self, specs):
                raise AssertionError("engine must not be consulted")

        results = run_together(
            self._campaigns(2), ExplodingEngine(), skip=[0, 1]
        )
        assert results == [None, None]

    def test_fully_skipped_call_accepts_engine_none(self):
        assert run_together(self._campaigns(2), None, skip=[0, 1]) == [None, None]

    def test_skip_index_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="out of range"):
            run_together(self._campaigns(2), SerialEngine(), skip=[2])
        with pytest.raises(ConfigError, match="out of range"):
            run_together(self._campaigns(2), SerialEngine(), skip=[-1])


class TestUniformJobsPlumbing:
    """Satellite: fig1 and x3 honor the jobs knob like everyone else."""

    @pytest.mark.parametrize("experiment_id", ["fig1", "x3"])
    def test_process_backend_byte_identical(self, experiment_id):
        definition = get_experiment(experiment_id)
        serial = Study(experiment_id, **definition.smoke_params).run()
        pooled = Study(experiment_id, **definition.smoke_params).run(jobs=2)
        assert serial.only().result.rendered == pooled.only().result.rendered
        assert serial.column_mismatches(pooled) == []

    def test_x3_fans_out_one_unit_per_estimator(self):
        plan = get_experiment("x3").build(
            get_experiment("x3").schema.resolve({"samples": 60})
        )
        assert len(plan.campaign) == 4  # one EstimatorTraceSpec each
        assert plan.campaign.labels == ["harmonic", "ewma", "window", "last"]

    def test_fig1_fans_out_one_unit_per_theta(self):
        plan = get_experiment("fig1").build(
            get_experiment("fig1").schema.resolve({})
        )
        assert len(plan.campaign) == 4
