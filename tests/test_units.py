"""Unit-conversion helpers: parsing, formatting, video byte math."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitParseError
from repro.units import (
    GB,
    KB,
    MB,
    bytes_of_video,
    format_size,
    kbit,
    mbit,
    parse_rate,
    parse_size,
    seconds_of_video,
    to_mbit,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("123") == 123

    def test_kb_binary(self):
        assert parse_size("16KB") == 16 * 1024

    def test_mb_binary(self):
        assert parse_size("1MB") == 1024 * 1024

    def test_gb(self):
        assert parse_size("2GB") == 2 * GB

    def test_case_insensitive(self):
        assert parse_size("64kb") == 64 * KB

    def test_short_suffix(self):
        assert parse_size("256K") == 256 * KB

    def test_whitespace_tolerated(self):
        assert parse_size("  4 MB ") == 4 * MB

    def test_fractional_resolving_to_whole_bytes(self):
        assert parse_size("1.5KB") == 1536

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(UnitParseError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(UnitParseError):
            parse_size("lots of bytes")

    def test_fractional_bytes_rejected(self):
        with pytest.raises(UnitParseError):
            parse_size("0.3")


class TestFormatSize:
    def test_paper_axis_labels(self):
        # The exact labels of Fig. 3's Y axis.
        assert [format_size(s) for s in (16 * KB, 64 * KB, 256 * KB, MB)] == [
            "16KB",
            "64KB",
            "256KB",
            "1MB",
        ]

    def test_small_values_in_bytes(self):
        assert format_size(100) == "100B"

    def test_non_exact_gets_decimal(self):
        assert format_size(1536) == "1.5KB"

    def test_negative_rejected(self):
        with pytest.raises(UnitParseError):
            format_size(-5)

    @given(st.integers(min_value=0, max_value=10 * GB))
    def test_roundtrip_exact_multiples(self, n):
        # format -> parse is identity whenever format emits no decimals.
        text = format_size(n)
        if "." not in text:
            assert parse_size(text) == n


class TestRates:
    def test_mbit(self):
        assert mbit(8.0) == 1_000_000.0

    def test_kbit(self):
        assert kbit(8.0) == 1000.0

    def test_to_mbit_inverse(self):
        assert to_mbit(mbit(13.37)) == pytest.approx(13.37)

    def test_parse_rate_mbps(self):
        assert parse_rate("8mbps") == 1_000_000.0

    def test_parse_rate_number_passthrough(self):
        assert parse_rate(5000.0) == 5000.0

    def test_parse_rate_garbage(self):
        with pytest.raises(UnitParseError):
            parse_rate("fast")

    def test_parse_rate_negative(self):
        with pytest.raises(UnitParseError):
            parse_rate(-1.0)


class TestVideoByteMath:
    def test_seconds_of_video(self):
        assert seconds_of_video(1000, 100.0) == 10.0

    def test_bytes_of_video(self):
        assert bytes_of_video(10.0, 100.0) == 1000

    @given(
        st.floats(min_value=0.1, max_value=7200.0),
        st.floats(min_value=1000.0, max_value=10_000_000.0),
    )
    def test_roundtrip(self, duration, bitrate):
        num_bytes = bytes_of_video(duration, bitrate)
        recovered = seconds_of_video(num_bytes, bitrate)
        assert recovered == pytest.approx(duration, rel=1e-3, abs=1e-3)

    def test_zero_bitrate_rejected(self):
        with pytest.raises(UnitParseError):
            seconds_of_video(100, 0.0)
        with pytest.raises(UnitParseError):
            bytes_of_video(1.0, 0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(UnitParseError):
            bytes_of_video(-1.0, 100.0)
