"""Nightly perf floor: the kernel rewrite must stay a rewrite.

The committed trajectory lives in ``benchmarks/results/
BENCH_perf_core.json``; this wall is the tripwire that fails a nightly
run (``pytest -m slow``) if the calendar fast lane regresses back
toward the seed kernel's throughput.  Floors are live same-machine
ratios, set well under the recorded margins (~2.5x and ~1.5x at the
time of writing) so shared-runner noise cannot trip them, while a real
regression — a lost inline, an accidental allocation on the hot path —
still does.
"""

from __future__ import annotations

import time

import pytest

from repro.net.calendar import compiled_core
from repro.net.env import Environment

pytestmark = pytest.mark.slow


class _Ticker:
    __slots__ = ("call_later", "remaining")

    def __init__(self, call_later, remaining):
        self.call_later = call_later
        self.remaining = remaining

    def __call__(self):
        left = self.remaining - 1
        if left:
            self.remaining = left
            self.call_later(0.001, self)


def _callback_storm(kernel: str, chains: int = 50, depth: int = 1000) -> float:
    env = Environment(kernel=kernel)
    for _ in range(chains):
        env.call_later(0.001, _Ticker(env.call_later, depth))
    start = time.perf_counter()
    env.run()
    return env.scheduled_count / (time.perf_counter() - start)


def _generator_storm(kernel: str, procs: int = 50, timeouts: int = 1000) -> float:
    def worker(env, n):
        for _ in range(n):
            yield env.timeout(0.001)

    env = Environment(kernel=kernel)
    for _ in range(procs):
        env.process(worker(env, timeouts))
    start = time.perf_counter()
    env.run()
    return env.scheduled_count / (time.perf_counter() - start)


def _best_of(fn, repeats: int = 3) -> float:
    return max(fn() for _ in range(repeats))


def test_calendar_fast_lane_beats_seed_shape():
    """Calendar + fast lane vs the seed shape (heapq + generator
    timeouts), live on this machine: the rewrite's headline ratio."""
    seed_shape = _best_of(lambda: _generator_storm("heapq"))
    rewrite = _best_of(lambda: _callback_storm("calendar"))
    ratio = rewrite / seed_shape
    assert ratio >= 1.5, f"calendar fast lane regressed to {ratio:.2f}x the seed shape"


def test_compiled_core_beats_pure_python():
    """The compiled calendar must out-dispatch the pure-python one (it
    exists for no other reason)."""
    if compiled_core() is None:
        pytest.skip("compiled core not built on this machine")
    pure = _best_of(lambda: _callback_storm("calendar"))
    compiled = _best_of(lambda: _callback_storm("compiled"))
    ratio = compiled / pure
    assert ratio >= 1.1, f"compiled core only {ratio:.2f}x the pure-python calendar"
