"""MPTCP-like single-source aggregation baseline (EXP-X2)."""

import pytest

from repro.baselines.mptcp import MPTCPLikeDriver
from repro.core.config import PlayerConfig
from repro.sim.driver import MSPlayerDriver
from repro.sim.profiles import testbed_profile, youtube_profile
from repro.sim.scenario import Scenario, ScenarioConfig


def scenario(seed=1, **kwargs):
    return Scenario(
        testbed_profile(), seed=seed, config=ScenarioConfig(video_duration_s=120.0, **kwargs)
    )


class TestMPTCPLike:
    def test_all_traffic_lands_on_one_server(self):
        driver = MPTCPLikeDriver(scenario(), PlayerConfig(), stop="prebuffer")
        outcome = driver.run()
        served = {k: v for k, v in outcome.server_bytes.items() if v > 0}
        assert len(served) == 1
        assert driver.server_concentration == pytest.approx(1.0)

    def test_msplayer_spreads_across_servers(self):
        driver = MSPlayerDriver(scenario(), PlayerConfig(), stop="prebuffer")
        outcome = driver.run()
        served = {k: v for k, v in outcome.server_bytes.items() if v > 0}
        assert len(served) == 2  # one per network

    def test_both_paths_still_used(self):
        driver = MPTCPLikeDriver(scenario(seed=2), PlayerConfig(), stop="prebuffer")
        outcome = driver.run()
        assert outcome.metrics.traffic_fraction(0, "prebuffer") < 1.0
        assert outcome.metrics.traffic_fraction(1, "prebuffer") < 1.0

    def test_completes_prebuffering(self):
        outcome = MPTCPLikeDriver(scenario(seed=3), PlayerConfig(), stop="prebuffer").run()
        assert outcome.stop_reason == "prebuffer-complete"
        assert outcome.startup_delay is not None

    def test_overloaded_single_server_hurts(self):
        # With an overloadable server, concentrating demand is slower
        # than spreading it — the §2 source-diversity argument.
        config = PlayerConfig()
        slow, fast = [], []
        for seed in range(3):
            world = Scenario(
                youtube_profile(),
                seed=seed,
                config=ScenarioConfig(video_duration_s=120.0, overload_threshold=1),
            )
            slow.append(MPTCPLikeDriver(world, config, stop="prebuffer").run().startup_delay)
            world2 = Scenario(
                youtube_profile(),
                seed=seed,
                config=ScenarioConfig(video_duration_s=120.0, overload_threshold=1),
            )
            fast.append(MSPlayerDriver(world2, config, stop="prebuffer").run().startup_delay)
        assert sum(fast) < sum(slow)
