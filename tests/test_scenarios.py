"""The scenarios package: arrivals, mixes, churn timelines, SLOs.

Unit coverage for the declarative ingredients plus a small end-to-end
:class:`~repro.scenarios.experiment.ScenarioExperiment` run.  The
hypothesis properties pin the arrival process's contract: sorted,
in-horizon, exactly-``count`` launch times that are a pure function of
the seed.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.rng import RngFactory
from repro.scenarios import (
    ArrivalSpec,
    ChurnSpec,
    ClientClass,
    DiurnalCurve,
    FlashCrowd,
    MixSpec,
    ScenarioExperiment,
    population_slo,
    thinned_arrival_times,
)
from repro.scenarios.churn import (
    PathDegradation,
    ServerBrownout,
    ServerCrash,
    schedule_churn,
)
from repro.sim.scenario import LTE_NET, WIFI_NET


class TestDiurnalCurve:
    def test_rate_oscillates_between_one_and_peak(self):
        curve = DiurnalCurve(amplitude=2.0, period_s=60.0, phase=0.5)
        rates = [curve.rate(t) for t in range(0, 61, 5)]
        assert min(rates) >= 1.0 - 1e-12
        assert max(rates) <= curve.peak_rate + 1e-12
        assert curve.peak_rate == pytest.approx(3.0)

    def test_flat_curve_is_homogeneous(self):
        curve = DiurnalCurve(amplitude=0.0)
        assert curve.rate(0.0) == curve.rate(17.3) == 1.0


class TestArrivals:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=1, max_value=64),
        amplitude=st.floats(min_value=0.0, max_value=8.0),
        horizon=st.floats(min_value=1.0, max_value=600.0),
    )
    def test_times_sorted_in_horizon_exact_count(
        self, seed, count, amplitude, horizon
    ):
        spec = ArrivalSpec(
            horizon_s=horizon, curve=DiurnalCurve(amplitude=amplitude)
        )
        times = spec.times(seed, count)
        assert len(times) == count
        assert times == sorted(times)
        assert all(0.0 <= t < horizon for t in times)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=1, max_value=64),
    )
    def test_times_are_seed_deterministic(self, seed, count):
        spec = ArrivalSpec(horizon_s=45.0, curve=DiurnalCurve(amplitude=1.5))
        assert spec.times(seed, count) == spec.times(seed, count)

    @settings(max_examples=25, deadline=None)
    @given(
        rng_seed=st.integers(min_value=0, max_value=2**31 - 1),
        amplitude=st.floats(min_value=0.0, max_value=8.0),
    )
    def test_thinning_bounds(self, rng_seed, amplitude):
        curve = DiurnalCurve(amplitude=amplitude, period_s=30.0)
        rng = RngFactory(rng_seed).generator("test.thinning")
        times = thinned_arrival_times(rng, curve, horizon_s=30.0, count=32)
        assert len(times) == 32
        assert times == sorted(times)
        assert all(0.0 <= t < 30.0 for t in times)

    def test_flash_crowd_claims_its_share(self):
        spec = ArrivalSpec(
            horizon_s=60.0,
            flash_crowds=(FlashCrowd(at_s=20.0, clients=5, width_s=2.0),),
        )
        times = spec.times(7, 8)
        in_burst = [t for t in times if 20.0 <= t <= 22.0]
        assert len(in_burst) >= 5
        assert len(times) == 8

    def test_crowds_larger_than_population_rejected(self):
        spec = ArrivalSpec(
            horizon_s=60.0,
            flash_crowds=(FlashCrowd(at_s=5.0, clients=10),),
        )
        with pytest.raises(ConfigError, match="claim"):
            spec.times(1, 4)

    def test_seed_changes_the_times(self):
        spec = ArrivalSpec(horizon_s=30.0)
        assert spec.times(1, 16) != spec.times(2, 16)


class TestMix:
    def test_weights_must_be_positive(self):
        with pytest.raises(ConfigError):
            ClientClass("broken", weight=0.0)

    def test_unknown_driver_rejected(self):
        with pytest.raises(ConfigError, match="driver"):
            ClientClass("broken", weight=1.0, driver="quantum")

    def test_assignment_is_deterministic_and_complete(self):
        mix = MixSpec(catalog_size=6)
        factory = RngFactory(42)
        catalog = mix.build_catalog(factory)
        assignments = mix.assign(RngFactory(42), 24, catalog)
        again = mix.assign(RngFactory(42), 24, catalog)
        assert assignments == again
        assert [a.index for a in assignments] == list(range(24))
        names = {c.name for c in mix.classes}
        assert {a.client_class for a in assignments} <= names
        video_ids = set(catalog.ids())
        assert {a.video_id for a in assignments} <= video_ids

    def test_zipf_skew_prefers_popular_videos(self):
        mix = MixSpec(catalog_size=12, zipf_s=1.6)
        factory = RngFactory(7)
        catalog = mix.build_catalog(factory)
        assignments = mix.assign(RngFactory(7), 400, catalog)
        counts: dict[str, int] = {}
        for a in assignments:
            counts[a.video_id] = counts.get(a.video_id, 0) + 1
        # With s=1.6 over 12 titles, the head title should clearly beat
        # the uniform share.
        assert max(counts.values()) > 400 / 12 * 2


class TestChurn:
    def test_timeline_sorted_and_deterministic(self):
        spec = ChurnSpec(brownouts=3, crashes=2, degradations=2)
        events = spec.timeline(11, networks=(WIFI_NET, LTE_NET), hosts_per_network=3)
        assert events == spec.timeline(
            11, networks=(WIFI_NET, LTE_NET), hosts_per_network=3
        )
        starts = [e.start_s for e in events]
        assert starts == sorted(starts)
        assert len(events) == 7
        for event in events:
            assert spec.window_start_s <= event.start_s < event.end_s

    def test_empty_spec_yields_no_events(self):
        assert ChurnSpec().timeline(5, (WIFI_NET,), 2) == ()

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigError):
            ServerBrownout(WIFI_NET, 0, start_s=10.0, end_s=5.0)
        with pytest.raises(ConfigError):
            ServerCrash(WIFI_NET, 0, start_s=-1.0, end_s=5.0)
        with pytest.raises(ConfigError):
            PathDegradation("wifi", start_s=3.0, end_s=3.0)

    def test_brownout_lowers_and_restores_threshold(self):
        from repro.cdn.catalog import Catalog
        from repro.cdn.deployment import CDNConfig, CDNDeployment
        from repro.cdn.videos import VideoMeta
        from repro.net.dns import StubResolver
        from repro.net.env import Environment
        from repro.net.topology import Network

        env = Environment()
        network = Network(env)
        catalog = Catalog()
        catalog.add(VideoMeta("vid01234567", "t", "a", 60.0))
        deployment = CDNDeployment(
            env,
            network,
            catalog,
            CDNConfig(
                networks=(WIFI_NET, LTE_NET),
                video_servers_per_network=1,
                overload_threshold=4,
            ),
            rng=RngFactory(3).generator("cdn"),
            resolver=StubResolver(env),
        )
        host = deployment.pools[WIFI_NET].video_hosts[0]
        before = host.app.overload_threshold
        events = [
            ServerBrownout(WIFI_NET, 0, start_s=1.0, end_s=2.0, threshold=0)
        ]
        schedule_churn(env, deployment, events)
        env.run(until=1.5)
        assert host.app.overload_threshold == 0
        env.run(until=3.0)
        assert host.app.overload_threshold == before

    def test_crash_fails_and_recovers_host(self):
        from repro.cdn.catalog import Catalog
        from repro.cdn.deployment import CDNConfig, CDNDeployment
        from repro.cdn.videos import VideoMeta
        from repro.net.dns import StubResolver
        from repro.net.env import Environment
        from repro.net.topology import Network

        env = Environment()
        network = Network(env)
        catalog = Catalog()
        catalog.add(VideoMeta("vid01234567", "t", "a", 60.0))
        deployment = CDNDeployment(
            env,
            network,
            catalog,
            CDNConfig(networks=(WIFI_NET,), video_servers_per_network=1),
            rng=RngFactory(3).generator("cdn"),
            resolver=StubResolver(env),
        )
        host = deployment.pools[WIFI_NET].video_hosts[0]
        schedule_churn(
            env, deployment, [ServerCrash(WIFI_NET, 0, start_s=1.0, end_s=2.0)]
        )
        env.run(until=1.5)
        assert not host.up
        env.run(until=3.0)
        assert host.up


class TestScenarioExperiment:
    def test_small_population_end_to_end(self):
        experiment = ScenarioExperiment(
            arrivals=ArrivalSpec(horizon_s=10.0),
            mix=MixSpec(catalog_size=4),
            churn=ChurnSpec(crashes=1, window_start_s=2.0, window_end_s=8.0),
            client_count=4,
            seed=123,
        )
        result = experiment.run("rotate")
        assert len(result.outcomes) == 4
        assert sum(result.server_bytes.values()) > 0

    def test_specs_are_picklable(self):
        experiment = ScenarioExperiment(client_count=3, seed=9)
        specs = experiment.specs_for("static", replicates=2)
        assert len(specs) == 2
        revived = pickle.loads(pickle.dumps(specs))
        assert [s.seed for s in revived] == [s.seed for s in specs]

    def test_replicate_seeds_are_policy_independent(self):
        experiment = ScenarioExperiment(client_count=2, seed=5)
        static = experiment.specs_for("static", replicates=3)
        rotate = experiment.specs_for("rotate", replicates=3)
        assert [s.seed for s in static] == [s.seed for s in rotate]
        assert len({s.seed for s in static}) == 3

    def test_unknown_world_profile_rejected(self):
        with pytest.raises(ConfigError, match="profile"):
            ScenarioExperiment(world_profile="atlantis")


class TestSLO:
    def test_population_slo_panel(self):
        experiment = ScenarioExperiment(
            arrivals=ArrivalSpec(horizon_s=8.0),
            mix=MixSpec(catalog_size=4),
            client_count=4,
            seed=31,
        )
        population = experiment.compare(
            policies=("rotate",), replicates=2, jobs="serial"
        )
        slo = population_slo(population["rotate"].batch)
        assert slo.sessions == 8
        assert 0 < slo.completed <= 8
        assert slo.p50_startup_s <= slo.p95_startup_s <= slo.p99_startup_s
        assert 0.0 <= slo.rebuffer_ratio < 1.0
        assert slo.failover_rate >= 0.0
        assert slo.imbalance_max >= slo.imbalance_mean >= 1.0
        assert slo.completion_rate == slo.completed / slo.sessions
        as_dict = slo.as_dict()
        assert as_dict["sessions"] == 8
        assert set(as_dict) >= {
            "p50_startup_s",
            "p95_startup_s",
            "p99_startup_s",
            "rebuffer_ratio",
            "failover_rate",
            "imbalance_mean",
            "imbalance_max",
        }
