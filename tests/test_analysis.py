"""Statistics and table rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    bootstrap_ci,
    harmonic_mean,
    iqr,
    median,
    percentile,
    summarize,
)
from repro.analysis.tables import ascii_boxplot, format_table, render_distribution_rows
from repro.errors import ConfigError

samples = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=2, max_size=50
)


class TestStats:
    def test_median_matches_numpy(self):
        values = [3.0, 1.0, 2.0, 9.0]
        assert median(values) == float(np.median(values))

    def test_percentile_bounds(self):
        with pytest.raises(ConfigError):
            percentile([1.0], 101.0)

    def test_iqr_ordering(self):
        low, high = iqr(list(range(100)))
        assert low < high

    def test_empty_rejected(self):
        for fn in (median, harmonic_mean, summarize):
            with pytest.raises(ConfigError):
                fn([])

    @given(samples)
    def test_harmonic_le_arithmetic(self, values):
        # AM-HM inequality: sanity for the estimator rationale.
        assert harmonic_mean(values) <= float(np.mean(values)) * (1 + 1e-9)

    def test_harmonic_requires_positive(self):
        with pytest.raises(ConfigError):
            harmonic_mean([1.0, 0.0])

    def test_bootstrap_ci_contains_point_estimate(self):
        rng = np.random.Generator(np.random.PCG64(0))
        values = rng.normal(10.0, 1.0, size=200)
        low, high = bootstrap_ci(values, confidence=0.95, resamples=500)
        assert low <= float(np.median(values)) <= high
        assert high - low < 1.0  # tight for n=200

    def test_bootstrap_deterministic_given_seed(self):
        values = list(range(1, 30))
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_bootstrap_matches_per_resample_reference(self):
        """Cross-check the vectorized bootstrap against the retired
        per-resample implementation (2000 ``rng.choice`` calls).

        The single ``(resamples, n)`` draw consumes the seed stream
        differently, so endpoints cannot match bit-for-bit; interval
        *width* and location must agree within bootstrap noise.
        """

        def reference(values, statistic=np.median, confidence=0.95,
                      resamples=2000, seed=0):
            array = np.asarray(values, dtype=float)
            rng = np.random.Generator(np.random.PCG64(seed))
            stats = np.empty(resamples)
            for i in range(resamples):
                stats[i] = statistic(rng.choice(array, size=array.size, replace=True))
            alpha = (1.0 - confidence) / 2.0
            return (
                float(np.quantile(stats, alpha)),
                float(np.quantile(stats, 1.0 - alpha)),
            )

        rng = np.random.Generator(np.random.PCG64(42))
        values = rng.normal(10.0, 2.0, size=150)
        old_lo, old_hi = reference(values)
        new_lo, new_hi = bootstrap_ci(values)
        old_width, new_width = old_hi - old_lo, new_hi - new_lo
        assert new_width == pytest.approx(old_width, rel=0.25)
        assert new_lo == pytest.approx(old_lo, abs=0.5 * old_width)
        assert new_hi == pytest.approx(old_hi, abs=0.5 * old_width)

    def test_bootstrap_mean_statistic_vectorizes(self):
        values = list(range(1, 40))
        lo, hi = bootstrap_ci(values, statistic=np.mean, resamples=400)
        assert lo <= float(np.mean(values)) <= hi

    def test_bootstrap_axis_free_statistic_falls_back(self):
        """A statistic without an ``axis`` parameter still works via
        the apply-along-axis fallback, on the same resample draw."""

        def span(sample):
            return float(np.max(sample) - np.min(sample))

        values = list(range(1, 40))
        lo, hi = bootstrap_ci(values, statistic=span, resamples=200)
        assert 0.0 < lo <= hi <= 39.0

    def test_summarize_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.p25 < summary.median < summary.p75

    def test_summary_single_value_std_zero(self):
        assert summarize([5.0]).std == 0.0


class TestTables:
    def test_format_table_alignment(self):
        table = format_table([{"name": "a", "value": "1"}, {"name": "bbbb", "value": "22"}])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        assert format_table([{"a": "1"}], title="T").splitlines()[0] == "T"

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigError):
            format_table([])

    def test_boxplot_markers_present(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 10.0])
        strip = ascii_boxplot(summary, 0.0, 11.0, width=40)
        assert len(strip) == 40
        for marker in "*[]":
            assert marker in strip

    def test_boxplot_median_position_scales(self):
        summary = summarize([5.0] * 5)
        strip = ascii_boxplot(summary, 0.0, 10.0, width=41)
        assert strip.index("*") == 20  # exactly the middle

    def test_boxplot_bad_scale_rejected(self):
        summary = summarize([1.0, 2.0])
        with pytest.raises(ConfigError):
            ascii_boxplot(summary, 5.0, 5.0)

    def test_render_distribution_rows(self):
        text = render_distribution_rows(
            [("WiFi", [10.0, 11.0, 12.0]), ("MSPlayer", [6.0, 7.0, 8.0])],
            title="Fig. X",
        )
        assert "Fig. X" in text
        assert "WiFi" in text and "MSPlayer" in text
        assert "median=7.00s" in text

    def test_render_degenerate_identical_values(self):
        text = render_distribution_rows([("A", [2.0, 2.0])])
        assert "A" in text
