"""Experiment definition functions (quick-trial smoke + shape checks).

Benchmarks run these at paper scale; here we verify the machinery with
minimal trials so the unit suite stays fast.
"""

import pytest

from repro.analysis.experiments import (
    fig1_bootstrap_timing,
    fig2_prebuffer_testbed,
    fig4_prebuffer_youtube,
    table1_traffic_fraction,
    x3_estimators,
)


class TestFig1:
    def test_structure(self):
        result = fig1_bootstrap_timing(thetas=(2.0,))
        assert result.experiment_id == "fig1"
        data = result.raw["theta=2.0"]
        assert set(data) == {"measured", "predicted"}
        assert "psi wifi" in result.rendered or "psi" in result.rendered

    def test_measured_close_to_predicted(self):
        result = fig1_bootstrap_timing(thetas=(2.5,))
        data = result.raw["theta=2.5"]
        for key in ("psi_wifi", "pi_lte"):
            measured = data["measured"][key]
            predicted = data["predicted"][key]
            assert measured == pytest.approx(predicted, rel=0.2)


class TestFig2:
    def test_minimal_run(self):
        result = fig2_prebuffer_testbed(trials=2)
        assert set(result.raw["medians"]) == {"WiFi", "LTE", "MSPlayer"}
        assert "Fig. 2" in result.rendered

    def test_msplayer_wins_even_with_two_trials(self):
        result = fig2_prebuffer_testbed(trials=2)
        medians = result.raw["medians"]
        assert medians["MSPlayer"] < medians["LTE"]


class TestFig4:
    def test_minimal_run(self):
        result = fig4_prebuffer_youtube(trials=2, prebuffers=(20.0,))
        assert "20s" in result.raw
        assert "reduction" in result.raw["20s"]


class TestTable1:
    def test_minimal_run(self):
        result = table1_traffic_fraction(trials=2, durations=(20.0,))
        entry = result.raw["20s"]
        assert 0.0 < entry["prebuffer_mean"] < 1.0
        assert 0.0 <= entry["prebuffer_std"] < 0.5


class TestX3:
    def test_harmonic_wins(self):
        result = x3_estimators()
        assert result.raw["harmonic"] < min(
            result.raw["ewma"], result.raw["window"], result.raw["last"]
        )

    def test_deterministic(self):
        assert x3_estimators().raw == x3_estimators().raw
