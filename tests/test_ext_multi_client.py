"""Multi-client shared-CDN experiments."""

import pytest

from repro.errors import ConfigError
from repro.ext.multi_client import MultiClientExperiment
from repro.sim.profiles import testbed_profile


@pytest.fixture(scope="module")
def experiment():
    return MultiClientExperiment(
        testbed_profile,
        client_count=3,
        video_duration_s=90.0,
        overload_threshold=2,
        seed=11,
    )


class TestMultiClient:
    def test_all_clients_complete(self, experiment):
        result = experiment.run("static")
        assert len(result.outcomes) == 3
        assert len(result.startup_delays()) == 3

    def test_static_concentrates_load(self, experiment):
        result = experiment.run("static")
        # 4 video servers total, all traffic on 2 (one per network).
        zero_servers = [k for k, v in result.server_bytes.items() if v == 0]
        assert len(zero_servers) == 2
        assert result.load_imbalance > 1.5

    def test_rotate_spreads_load(self, experiment):
        static = experiment.run("static")
        rotate = experiment.run("rotate")
        assert rotate.load_imbalance < static.load_imbalance

    def test_clients_have_independent_links(self, experiment):
        # Different clients see different (seeded) link draws, so their
        # start-up delays differ.
        result = experiment.run("static")
        delays = result.startup_delays()
        assert len(set(round(d, 6) for d in delays)) > 1

    def test_reproducible(self):
        def run():
            return MultiClientExperiment(
                testbed_profile, client_count=2, video_duration_s=60.0, seed=5
            ).run("rotate")

        a, b = run(), run()
        assert sorted(a.startup_delays()) == sorted(b.startup_delays())
        assert a.server_bytes == b.server_bytes

    def test_zero_clients_rejected(self):
        with pytest.raises(ConfigError):
            MultiClientExperiment(testbed_profile, client_count=0)

    def test_imbalance_of_empty_result(self, experiment):
        from repro.ext.multi_client import MultiClientResult

        assert MultiClientResult(policy="x").load_imbalance == 0.0


class TestCompare:
    """``compare`` rides the population campaign layer."""

    def test_returns_population_results_per_policy(self):
        from repro.ext.population import PopulationResult

        experiment = MultiClientExperiment(
            testbed_profile, client_count=2, video_duration_s=60.0, seed=5
        )
        results = experiment.compare(("static", "rotate"), replicates=2)
        assert list(results) == ["static", "rotate"]
        for result in results.values():
            assert isinstance(result, PopulationResult)
            assert len(result) == 2
            assert len(result.startup_delays()) == 4  # 2 replicates x 2 clients

    def test_single_replicate_matches_direct_run_distribution(self):
        """One replicate of ``compare`` is one seeded ``run`` — same
        machinery, derived seed."""
        experiment = MultiClientExperiment(
            testbed_profile, client_count=2, video_duration_s=60.0, seed=5
        )
        compared = experiment.compare(("rotate",), replicates=1)["rotate"]
        direct = MultiClientExperiment(
            testbed_profile,
            client_count=2,
            video_duration_s=60.0,
            seed=experiment.replicate_seed(0),
        ).run("rotate")
        assert compared.results == [direct]
