"""Scheduler equivalence wall: heapq vs calendar (vs compiled, if built).

The calendar queue's whole contract is *bit-identical dispatch*: for any
schedule — co-timed ties, urgent entries, fast-lane callbacks, stale
``_schedule_resume`` redeliveries, interrupts, far-future overflows —
every kernel must pop the exact same ``(time, priority, counter)``
sequence the seed heapq pops.  The hypothesis properties below drive
random schedules through the raw scheduler API and whole random process
programs through :class:`Environment`, comparing kernels pairwise.

The compiled core joins the comparison automatically when the
``repro.net._ckernel`` extension is built; otherwise the pure-python
pair still pins the contract.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClockError, ConfigError, Interrupt
from repro.net.calendar import (
    KERNELS,
    CalendarScheduler,
    HeapScheduler,
    compiled_core,
    make_scheduler,
    resolve_kernel,
    set_default_kernel,
)
from repro.net.env import Environment

#: Kernels actually runnable here ("compiled" only when built).
BUILT_KERNELS = [
    kernel for kernel in KERNELS if kernel != "compiled" or compiled_core() is not None
]


# ---------------------------------------------------------------------------
# Selection machinery
# ---------------------------------------------------------------------------


class TestSelection:
    def test_default_is_heapq(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel() == "heapq"
        assert Environment().kernel == "heapq"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "calendar")
        assert resolve_kernel() == "calendar"
        assert isinstance(Environment()._scheduler, CalendarScheduler)

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "calendar")
        assert Environment(kernel="heapq").kernel == "heapq"

    def test_default_pin_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "heapq")
        previous = set_default_kernel("calendar")
        try:
            assert resolve_kernel() == "calendar"
        finally:
            set_default_kernel(previous)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            resolve_kernel("btree")
        with pytest.raises(ConfigError):
            Environment(kernel="btree")

    def test_case_and_whitespace_normalized(self):
        assert resolve_kernel(" HEAPQ ") == "heapq"

    def test_compiled_degrades_when_absent(self, monkeypatch):
        monkeypatch.setattr("repro.net.calendar.compiled_core", lambda: None)
        assert resolve_kernel("compiled") == "calendar"
        assert isinstance(make_scheduler("compiled"), CalendarScheduler)

    def test_make_scheduler_kinds(self):
        assert isinstance(make_scheduler("heapq"), HeapScheduler)
        assert isinstance(make_scheduler("calendar"), CalendarScheduler)
        for kernel in BUILT_KERNELS:
            assert make_scheduler(kernel).kernel == kernel


# ---------------------------------------------------------------------------
# Raw scheduler semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", BUILT_KERNELS)
class TestSchedulerBasics:
    def test_empty_peek_is_inf(self, kernel):
        assert make_scheduler(kernel).peek() == math.inf

    def test_empty_pop_raises(self, kernel):
        scheduler = make_scheduler(kernel)
        with pytest.raises(IndexError):
            scheduler.pop()

    def test_len_and_bool(self, kernel):
        scheduler = make_scheduler(kernel)
        assert len(scheduler) == 0 and not scheduler
        scheduler.schedule(1.0, 1, "x")
        assert len(scheduler) == 1 and scheduler
        scheduler.pop()
        assert len(scheduler) == 0 and not scheduler

    def test_counter_counts_every_lane(self, kernel):
        scheduler = make_scheduler(kernel)
        scheduler.schedule(1.0, 1, "a")
        scheduler.schedule_resume(1.0, 0, "b", "p")
        scheduler.schedule_callback(1.0, 1, "c")
        assert scheduler._counter == 3

    def test_entry_shapes(self, kernel):
        scheduler = make_scheduler(kernel)
        scheduler.schedule(1.0, 1, "event")
        scheduler.schedule_resume(2.0, 0, "event", "process")
        scheduler.schedule_callback(3.0, 1, "callback")
        assert scheduler.pop() == (1.0, 1, 1, "event", None)
        assert scheduler.pop() == (2.0, 0, 2, "event", "process")
        assert scheduler.pop() == (3.0, 1, 3, "callback")

    def test_infinite_times_pend_forever(self, kernel):
        scheduler = make_scheduler(kernel)
        scheduler.schedule(math.inf, 1, "never")
        scheduler.schedule(1.0, 1, "soon")
        assert scheduler.peek() == 1.0
        assert scheduler.pop()[3] == "soon"
        assert scheduler.peek() == math.inf
        assert scheduler.pop()[3] == "never"  # inf still pops last


# ---------------------------------------------------------------------------
# Property wall: identical dispatch on random schedules
# ---------------------------------------------------------------------------

#: Delays mixing dense co-timed ties, tiny/huge magnitudes, and +inf —
#: the far-overflow, rebase, and degenerate all-inf paths all get hit.
_DELAYS = st.one_of(
    st.sampled_from([0.0, 0.0, 1e-12, 0.5, 1.0, 1.0, 999.0, 1e6, math.inf]),
    st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            _DELAYS,
            st.sampled_from([0, 1]),
            st.sampled_from(["event", "resume", "callback"]),
        ),
        st.tuples(st.just("pop")),
    ),
    min_size=1,
    max_size=120,
)


def _drive(kernel: str, ops) -> list[tuple]:
    """Apply an op sequence to a fresh scheduler; return the dispatches.

    ``push`` delays are relative to the last popped time, so schedules
    interleave with dispatch exactly as a running environment's do (the
    regime where the cursor walk, clamping, and rebases all matter).
    """
    scheduler = make_scheduler(kernel)
    now = 0.0
    dispatched: list[tuple] = []
    token = 0
    for op in ops:
        if op[0] == "push":
            _, delay, priority, lane = op
            token += 1
            if lane == "event":
                scheduler.schedule(now + delay, priority, token)
            elif lane == "resume":
                scheduler.schedule_resume(now + delay, priority, token, -token)
            else:
                scheduler.schedule_callback(now + delay, priority, token)
        elif scheduler._n:
            entry = scheduler.pop()
            if entry[0] != math.inf:
                now = entry[0]
            dispatched.append(entry)
    while scheduler._n:
        dispatched.append(scheduler.pop())
    return dispatched


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_dispatch_order_identical_across_kernels(ops):
    reference = _drive("heapq", ops)
    for kernel in BUILT_KERNELS[1:]:
        assert _drive(kernel, ops) == reference, kernel


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    until=st.one_of(st.none(), st.floats(min_value=0.1, max_value=30.0)),
)
def test_random_process_programs_identical(seed, until):
    """Whole environments agree: timeouts, interrupts, conditions, and
    processed-target resumes produce the same trace on every kernel."""

    def run(kernel: str) -> list[tuple]:
        env = Environment(kernel=kernel)
        trace: list[tuple] = []
        rng = random.Random(seed)

        def worker(index: int, steps: list[float]):
            for number, delay in enumerate(steps):
                try:
                    yield env.timeout(delay)
                    trace.append(("step", index, number, env.now))
                except Interrupt as exc:
                    trace.append(("interrupt", index, number, env.now, str(exc)))

        def stale_resume(index: int, target):
            # Target is already processed by the time we yield it:
            # exercises the direct-resume (stale-entry-guard) lane.
            yield env.timeout(rng.uniform(5.0, 10.0))
            yield target
            trace.append(("stale", index, env.now))

        def interrupter(victims, delays):
            for delay in delays:
                yield env.timeout(delay)
                alive = [p for p in victims if p.is_alive]
                if alive:
                    alive[rng.randrange(len(alive))].interrupt("bang")
                    trace.append(("fired", env.now))

        workers = [
            env.process(
                worker(i, [round(rng.uniform(0.0, 4.0), 3) for _ in range(rng.randint(1, 5))])
            )
            for i in range(rng.randint(2, 6))
        ]
        early = env.timeout(rng.choice([0.0, 1.0]))
        env.process(stale_resume(99, early))
        env.process(interrupter(workers, [round(rng.uniform(0.5, 6.0), 3) for _ in range(3)]))
        env.process(interrupter(workers, [rng.uniform(0.5, 6.0)]))
        if until is None:
            env.run()
        else:
            env.run(until=until)
            env.run()  # drain the remainder after the boundary
        trace.append(("end", env.now))
        return trace

    reference = run("heapq")
    for kernel in BUILT_KERNELS[1:]:
        assert run(kernel) == reference, kernel


@settings(max_examples=50, deadline=None)
@given(
    first=st.floats(min_value=0.0, max_value=10.0),
    far=st.floats(min_value=100.0, max_value=1e6),
    boundary=st.floats(min_value=10.0, max_value=99.0),
    late_delay=st.floats(min_value=0.0, max_value=500.0),
)
def test_schedule_after_run_boundary_identical(first, far, boundary, late_delay):
    """Entries scheduled *behind* a rebased window (after ``run(until)``
    peeked past the boundary) still dispatch in heapq order."""

    def run(kernel: str) -> list[tuple]:
        env = Environment(kernel=kernel)
        order: list[tuple] = []
        env.call_at(first, lambda: order.append(("first", env.now)))
        env.call_at(far, lambda: order.append(("far", env.now)))
        env.call_at(far * 2.0, lambda: order.append(("farther", env.now)))
        env.run(until=boundary)
        env.call_later(late_delay, lambda: order.append(("late", env.now)))
        env.run()
        return order

    reference = run("heapq")
    for kernel in BUILT_KERNELS[1:]:
        assert run(kernel) == reference, kernel


# ---------------------------------------------------------------------------
# Targeted calendar internals
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", [k for k in BUILT_KERNELS if k != "heapq"])
class TestCalendarInternals:
    def test_rebase_spreads_far_future(self, kernel):
        scheduler = make_scheduler(kernel)
        times = [1000.0 + i * 7.0 for i in range(50)]
        for when in reversed(times):
            scheduler.schedule(when, 1, when)
        assert [scheduler.pop()[0] for _ in range(50)] == sorted(times)

    def test_all_infinite_entries_drain(self, kernel):
        scheduler = make_scheduler(kernel)
        for index in range(5):
            scheduler.schedule(math.inf, 1, index)
        assert scheduler.peek() == math.inf
        assert [scheduler.pop()[3] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_equal_times_fifo_within_priority(self, kernel):
        scheduler = make_scheduler(kernel)
        for index in range(20):
            scheduler.schedule(5.0, 1, ("normal", index))
        for index in range(20):
            scheduler.schedule(5.0, 0, ("urgent", index))
        popped = [scheduler.pop()[3] for _ in range(40)]
        assert popped[:20] == [("urgent", i) for i in range(20)]
        assert popped[20:] == [("normal", i) for i in range(20)]

    def test_width_must_be_positive(self, kernel):
        cls = type(make_scheduler(kernel))
        with pytest.raises((ConfigError, ValueError)):
            cls(width=0.0)
