"""The strict-typing ratchet: the mypy allowlist only ever grows.

``pyproject.toml`` adopts mypy strictness module by module via a
``[[tool.mypy.overrides]]`` allowlist.  This test freezes the floor:
removing an entry (or weakening a strict component flag) fails here,
so strictness can be added in any PR but never silently dropped.

The mypy *run* itself is a separate, availability-gated test — the
ratchet must hold even on machines without mypy installed.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
PYPROJECT = REPO_ROOT / "pyproject.toml"

#: The ratchet floor.  Entries are only ever ADDED to this set (and to
#: pyproject's override in the same commit); removing one is a build
#: failure by design.
RATCHET_FLOOR = frozenset(
    {
        "repro.net.calendar",
        "repro.net.events",
        "repro.sim.execution",
        "repro.sim.shm",
        "repro.study.*",
    }
)

#: Strict component flags every allowlist override must keep enabled
#: (mypy's `strict = true` cannot be set per-module).
REQUIRED_STRICT_FLAGS = (
    "disallow_untyped_defs",
    "disallow_incomplete_defs",
    "disallow_any_generics",
    "warn_return_any",
    "strict_equality",
)


def load_mypy_config() -> dict:
    with PYPROJECT.open("rb") as handle:
        payload = tomllib.load(handle)
    return payload["tool"]["mypy"]


def strict_override() -> dict:
    """The override section holding the strict allowlist."""
    config = load_mypy_config()
    overrides = config.get("overrides", [])
    for section in overrides:
        modules = set(section.get("module", []))
        if modules & RATCHET_FLOOR:
            return section
    pytest.fail("pyproject.toml lost the [[tool.mypy.overrides]] allowlist")


def test_allowlist_never_shrinks():
    modules = set(strict_override()["module"])
    missing = RATCHET_FLOOR - modules
    assert not missing, (
        f"mypy strict allowlist shrank: {sorted(missing)} removed. "
        "The ratchet only turns one way — restore the entries (and if a "
        "module was renamed, update RATCHET_FLOOR in the same commit)."
    )


def test_strict_flags_stay_enabled():
    section = strict_override()
    disabled = [flag for flag in REQUIRED_STRICT_FLAGS if section.get(flag) is not True]
    assert not disabled, (
        f"strict component flag(s) weakened on the allowlist: {disabled}"
    )


def test_global_profile_points_at_package():
    config = load_mypy_config()
    assert config["mypy_path"] == "src"
    assert config["packages"] == ["repro"]


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed in this environment"
)
def test_mypy_passes_on_allowlist():
    """Run mypy over the package; the overrides scope the strictness."""
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(PYPROJECT)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
