"""Cross-backend and cross-kernel determinism for x8/x9 scenarios.

Scenario populations carry more moving parts than any other work unit
— thinned arrivals, mixed driver kinds (VOD/live/adaptive) in one
environment, per-client profiles with session-relative outages, and a
churn timeline mutating the shared CDN — so this wall pins the whole
stack: rendered panel and raw SLO dicts byte-identical over
serial / process backends and heapq / calendar event kernels, plus a
save/load + cache round trip.  Paper-scale populations (≥200 clients,
the acceptance bar) run under the ``slow`` marker.
"""

from __future__ import annotations

import pytest

from repro.scenarios.experiments import x8_city_diurnal, x9_flash_crowd
from repro.sim.execution import ProcessEngine
from repro.study import Study, run_experiment
from repro.study.archive import load_study, save_study
from repro.study.cache import StudyCache

_SMOKE = dict(replicates=1, clients=4, catalog=6)

PARALLEL_BACKENDS = [
    pytest.param(lambda: ProcessEngine(2, ipc="pickle"), id="process-pickle"),
    pytest.param(lambda: ProcessEngine(2, ipc="shm"), id="process-shm"),
]


def _assert_identical(got, reference):
    assert got.experiment_id == reference.experiment_id
    assert got.rendered == reference.rendered
    assert got.raw == reference.raw


class TestScenarioCrossBackend:
    """x8/x9 byte-identical over serial / process-pickle / process-shm."""

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x8_matches_serial(self, make_jobs):
        reference = x8_city_diurnal(jobs="serial", **_SMOKE)
        _assert_identical(x8_city_diurnal(jobs=make_jobs(), **_SMOKE), reference)

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x9_matches_serial(self, make_jobs):
        """x9 exercises churn (brownouts + crashes) across the process
        boundary: the fault timeline must be rebuilt identically from
        the pickled spec, not shipped as live sim state."""
        reference = x9_flash_crowd(jobs="serial", **_SMOKE)
        _assert_identical(x9_flash_crowd(jobs=make_jobs(), **_SMOKE), reference)


class TestScenarioCrossKernel:
    """Event-kernel selection must never change a scenario byte."""

    @pytest.mark.parametrize("experiment_id", ["x8", "x9"])
    @pytest.mark.parametrize("kernel", ["calendar", "compiled"])
    def test_kernel_equality(self, experiment_id, kernel):
        reference = run_experiment(
            experiment_id, jobs="serial", kernel="heapq", **_SMOKE
        )
        _assert_identical(
            run_experiment(experiment_id, jobs="serial", kernel=kernel, **_SMOKE),
            reference,
        )


class TestScenarioRoundTrips:
    def test_x8_archive_round_trip(self, tmp_path):
        study = Study("x8", **_SMOKE).run()
        save_study(study, tmp_path / "x8")
        loaded = load_study(tmp_path / "x8")
        cell = study.only()
        revived = loaded.only()
        assert revived.result.rendered == cell.result.rendered
        assert revived.result.raw == cell.result.raw

    def test_x9_cache_hit_is_byte_identical(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        first = Study("x9", **_SMOKE).run(cache=cache)
        assert first.cache_info is not None
        assert first.cache_info.misses == 1
        second = Study("x9", **_SMOKE).run(cache=cache)
        assert second.cache_info is not None
        assert second.cache_info.hits == 1
        assert second.cache_info.submitted_units == 0
        assert second.only().result.rendered == first.only().result.rendered
        assert second.only().result.raw == first.only().result.raw


@pytest.mark.slow
class TestPaperScaleScenarios:
    """The acceptance bar: ≥200-client populations, same identities."""

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x8_population_scale(self, make_jobs):
        kwargs = dict(replicates=2, clients=200)
        reference = x8_city_diurnal(jobs="serial", **kwargs)
        got = x8_city_diurnal(jobs=make_jobs(), **kwargs)
        _assert_identical(got, reference)
        for slo in reference.raw.values():
            assert slo["sessions"] == 400
            assert slo["completed"] > 200

    def test_x9_population_scale_kernel_sweep(self):
        kwargs = dict(replicates=1, clients=200)
        reference = run_experiment("x9", jobs="serial", kernel="heapq", **kwargs)
        got = run_experiment("x9", jobs="auto", kernel="calendar", **kwargs)
        _assert_identical(got, reference)
