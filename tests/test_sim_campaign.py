"""Campaign scheduling and columnar aggregation.

The acceptance bar mirrors PR-1's: interleaving *all* configurations of
a figure sweep into one pool submission must change nothing about the
per-label results — byte-identical to running ``TrialRunner.run`` once
per configuration, whatever the backend (serial, process-pickle,
process-shm, auto).  The columnar ``OutcomeBatch`` must agree exactly
with the per-trial Python-loop accessors it replaced.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import assert_batches_identical
from repro.core.config import PlayerConfig
from repro.errors import ConfigError
from repro.sim.campaign import Campaign, OutcomeBatch, TrialResult, interleave
from repro.sim.execution import ProcessEngine, TrialSpec
from repro.sim.profiles import testbed_profile, youtube_profile
from repro.sim.runner import TrialRunner
from repro.sim.scenario import ScenarioConfig
from repro.units import KB, format_size

#: Every collection path a campaign can run on, as ``jobs`` values
#: (engine instances pass through ``resolve_engine`` unchanged).
#: Factories, not instances — each test gets a fresh engine.
BACKENDS = [
    pytest.param(lambda: "serial", id="serial"),
    pytest.param(lambda: "auto", id="auto"),
    pytest.param(lambda: ProcessEngine(2, ipc="pickle"), id="process-pickle"),
    pytest.param(lambda: ProcessEngine(2, ipc="shm"), id="process-shm"),
]


def short_config() -> ScenarioConfig:
    return ScenarioConfig(video_duration_s=120.0)


def _spec(label: str, trial: int) -> TrialSpec:
    return TrialSpec(
        label=label,
        trial=trial,
        seed=trial,
        profile_factory=testbed_profile,
        driver=lambda scenario: None,
    )


class TestInterleave:
    def test_round_robin_order(self):
        batches = [
            [_spec("a", 0), _spec("a", 1), _spec("a", 2)],
            [_spec("b", 0), _spec("b", 1)],
            [_spec("c", 0)],
        ]
        merged = interleave(batches)
        assert [(s.label, s.trial) for s in merged] == [
            ("a", 0), ("b", 0), ("c", 0),
            ("a", 1), ("b", 1),
            ("a", 2),
        ]

    def test_empty(self):
        assert interleave([]) == []


class TestCampaignAPI:
    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigError, match="empty"):
            Campaign().add([])

    def test_rejects_mixed_labels(self):
        with pytest.raises(ConfigError, match="one label"):
            Campaign().add([_spec("a", 0), _spec("b", 0)])

    def test_rejects_duplicate_labels(self):
        campaign = Campaign()
        campaign.add([_spec("a", 0)])
        with pytest.raises(ConfigError, match="duplicate"):
            campaign.add([_spec("a", 1)])

    def test_len_and_labels(self):
        campaign = Campaign()
        campaign.add([_spec("a", 0), _spec("a", 1)])
        campaign.add([_spec("b", 0)])
        assert len(campaign) == 3
        assert campaign.labels == ["a", "b"]


def _fig3_mini_configs() -> list[tuple[str, PlayerConfig]]:
    configs = []
    for prebuffer in (20.0,):
        for chunk in (64 * KB,):
            for scheduler in ("harmonic", "ewma", "ratio"):
                config = PlayerConfig(
                    prebuffer_s=prebuffer, scheduler=scheduler, base_chunk_bytes=chunk
                )
                label = f"{scheduler}/{format_size(chunk)}/{prebuffer:.0f}s"
                configs.append((label, config))
    return configs


def _assert_results_identical(campaign_result: TrialResult, barrier_result: TrialResult):
    assert campaign_result.label == barrier_result.label
    # The whole columnar batch, bit for bit — not just the accessors.
    assert_batches_identical(campaign_result.batch, barrier_result.batch)
    assert campaign_result.startup_delays() == barrier_result.startup_delays()
    assert campaign_result.cycle_durations() == barrier_result.cycle_durations()
    assert campaign_result.traffic_fractions(0, "prebuffer") == (
        barrier_result.traffic_fractions(0, "prebuffer")
    )
    assert [o.finished_at for o in campaign_result.outcomes] == [
        o.finished_at for o in barrier_result.outcomes
    ]
    assert [o.server_bytes for o in campaign_result.outcomes] == [
        o.server_bytes for o in barrier_result.outcomes
    ]


class TestCampaignDeterminism:
    """Interleaved campaign == per-configuration barrier path, bytewise."""

    @pytest.mark.parametrize("make_jobs", BACKENDS)
    def test_fig3_style_sweep_matches_per_configuration_path(self, make_jobs):
        runner = TrialRunner(
            testbed_profile, scenario_config=short_config(), root_seed=2015, trials=3
        )
        campaign = Campaign(jobs=make_jobs())
        for label, config in _fig3_mini_configs():
            campaign.add_run(runner, label, runner.msplayer(config))
        campaign_results = campaign.run()

        barrier = TrialRunner(
            testbed_profile,
            scenario_config=short_config(),
            root_seed=2015,
            trials=3,
            jobs=1,
        )
        for label, config in _fig3_mini_configs():
            _assert_results_identical(
                campaign_results[label], barrier.run(label, barrier.msplayer(config))
            )

    @pytest.mark.parametrize("make_jobs", BACKENDS)
    def test_table1_style_sweep_matches_per_configuration_path(self, make_jobs):
        """Table 1's shape: one runner per duration (different scenario
        configs), all registered in a single campaign."""

        def runners():
            for duration in (20.0, 40.0):
                scenario_config = ScenarioConfig(video_duration_s=max(300.0, duration * 8))
                runner = TrialRunner(
                    youtube_profile,
                    scenario_config=scenario_config,
                    root_seed=2018,
                    trials=2,
                )
                config = PlayerConfig(prebuffer_s=duration, rebuffer_fetch_s=duration)
                yield duration, runner, config

        campaign = Campaign(jobs=make_jobs())
        for duration, runner, config in runners():
            campaign.add_run(
                runner,
                f"t1-{duration}",
                runner.msplayer(config, stop="cycles", target_cycles=3),
            )
        campaign_results = campaign.run()

        for duration, runner, config in runners():
            reference = runner.run(
                f"t1-{duration}", runner.msplayer(config, stop="cycles", target_cycles=3)
            )
            _assert_results_identical(campaign_results[f"t1-{duration}"], reference)
            campaign_batch = campaign_results[f"t1-{duration}"].batch
            for phase in ("prebuffer", "rebuffer"):
                assert campaign_batch.traffic_fractions(0, phase).tolist() == (
                    reference.traffic_fractions(0, phase)
                )


class TestOutcomeBatch:
    """The columnar view agrees exactly with per-outcome Python loops."""

    @pytest.fixture(scope="class")
    def result(self) -> TrialResult:
        runner = TrialRunner(
            testbed_profile, scenario_config=short_config(), root_seed=99, trials=4
        )
        return runner.run(
            "batch", runner.msplayer(PlayerConfig(), stop="cycles", target_cycles=1)
        )

    def test_startup_delays_match_loop(self, result):
        expected = [
            o.startup_delay for o in result.outcomes if o.startup_delay is not None
        ]
        assert result.startup_delays() == expected
        assert result.batch.startup_delays().dtype == np.float64

    def test_cycle_durations_csr_layout(self, result):
        batch = result.batch
        expected: list[float] = []
        for i, outcome in enumerate(result.outcomes):
            durations = outcome.metrics.completed_cycle_durations()
            start, end = batch.cycle_offsets[i], batch.cycle_offsets[i + 1]
            assert batch.cycle_durations[start:end].tolist() == durations
            expected.extend(durations)
        assert result.cycle_durations() == expected

    def test_traffic_fractions_match_metrics(self, result):
        for phase in ("prebuffer", "rebuffer", "all"):
            expected = [o.metrics.traffic_fraction(0, phase) for o in result.outcomes]
            assert result.batch.traffic_fractions(0, phase).tolist() == expected

    def test_out_of_range_path_is_zero(self, result):
        # Both sides: beyond the widest path id, and negative (which
        # must not numpy-wrap to the last column).
        for path_id in (99, -1):
            expected = [
                o.metrics.traffic_fraction(path_id, "prebuffer")
                for o in result.outcomes
            ]
            assert result.batch.traffic_fractions(path_id, "prebuffer").tolist() == (
                expected
            )

    def test_batches_compare_by_identity(self, result):
        batch = result.batch
        assert batch == batch
        assert batch != OutcomeBatch.from_outcomes(result.outcomes)

    def test_unknown_phase_rejected(self, result):
        with pytest.raises(ConfigError, match="phase"):
            result.batch.phase_bytes("warmup")

    def test_scalar_columns(self, result):
        batch = result.batch
        assert batch.finished_at.tolist() == [o.finished_at for o in result.outcomes]
        assert batch.total_stall.tolist() == [
            o.metrics.total_stall_time for o in result.outcomes
        ]
        assert batch.failovers.tolist() == [
            o.metrics.failovers for o in result.outcomes
        ]
        assert batch.stop_reasons.tolist() == [o.stop_reason for o in result.outcomes]

    def test_empty_batch(self):
        batch = OutcomeBatch.from_outcomes([])
        assert len(batch) == 0
        assert batch.startup_delays().size == 0
        assert batch.prebuffer_bytes.shape == (0, 0)

    def test_batch_rebuilds_after_outcomes_change(self, result):
        partial = TrialResult("partial", result.outcomes[:2])
        assert len(partial.batch) == 2
        partial.outcomes.append(result.outcomes[2])
        assert len(partial.batch) == 3

    def test_batch_only_result_rejected(self, result):
        # A batch with no outcome source would serve .outcomes == []
        # beside a non-empty batch; the constructor fails loudly.
        with pytest.raises(ConfigError, match="outcome source"):
            TrialResult("orphan", batch=result.batch)

    def test_results_compare_by_value(self, result):
        same = TrialResult(result.label, list(result.outcomes))
        assert result == same
        assert result != TrialResult("other", list(result.outcomes))
        assert result != TrialResult(result.label, result.outcomes[:1])
        assert result.__eq__(42) is NotImplemented

    def test_column_mismatches_flags_exactly_the_diverged_column(self, result):
        batch = result.batch
        assert batch.column_mismatches(batch) == []
        rebuilt = OutcomeBatch.from_outcomes(result.outcomes)
        assert batch.column_mismatches(rebuilt) == []
        rebuilt.finished_at[0] += 1.0
        assert batch.column_mismatches(rebuilt) == ["finished_at"]
