"""The experiment registry and its typed parameter schemas.

Includes the CI registry-completeness gate: every experiment id must
carry a schema and smoke-run through ``Study`` at tiny scale, and every
id must be referenced by some benchmark file (so bench coverage cannot
drift from ``repro list``).
"""

import pathlib

import pytest

from repro.analysis import experiments as exp
from repro.scenarios import experiments as scenario_exp
from repro.errors import ConfigError
from repro.study import (
    ExperimentDef,
    ParamSchema,
    Study,
    experiment_ids,
    get_experiment,
    register,
)
from repro.study.params import Param
from repro.units import parse_size

ALL_IDS = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "table1",
    "x1", "x2", "x3", "x6", "x8", "x9",
]

#: id -> legacy compatibility wrapper (the pre-redesign call surface).
WRAPPERS = {
    "fig1": exp.fig1_bootstrap_timing,
    "fig2": exp.fig2_prebuffer_testbed,
    "fig3": exp.fig3_scheduler_sweep,
    "fig4": exp.fig4_prebuffer_youtube,
    "fig5": exp.fig5_rebuffer,
    "table1": exp.table1_traffic_fraction,
    "x1": exp.x1_robustness,
    "x2": exp.x2_source_diversity,
    "x3": exp.x3_estimators,
    "x6": exp.x6_population,
    "x8": scenario_exp.x8_city_diurnal,
    "x9": scenario_exp.x9_flash_crowd,
}


class TestParam:
    def test_scalar_coercion_from_strings(self):
        param = Param("trials", int, 20, minimum=1)
        assert param.coerce("7") == 7
        assert param.coerce(None) == 20
        with pytest.raises(ConfigError, match="trials"):
            param.coerce("seven")
        with pytest.raises(ConfigError, match=">= 1"):
            param.coerce(0)

    def test_float_accepts_ints(self):
        param = Param("rtt", float, 0.05)
        assert param.coerce(1) == 1.0
        assert isinstance(param.coerce(1), float)

    def test_bool_is_not_an_int(self):
        param = Param("trials", int, 20)
        with pytest.raises(ConfigError):
            param.coerce(True)

    def test_many_splits_commas_and_returns_tuples(self):
        param = Param("prebuffers", float, (20.0,), many=True)
        assert param.coerce("20,40") == (20.0, 40.0)
        assert param.coerce([20, 40]) == (20.0, 40.0)
        with pytest.raises(ConfigError, match="empty"):
            param.coerce([])

    def test_parse_hook_applies_per_element(self):
        param = Param("chunks", int, (65536,), many=True, parse=parse_size)
        assert param.coerce("64KB,1MB") == (65536, 1048576)

    def test_choices_enforced_per_element(self):
        param = Param(
            "schedulers", str, ("harmonic",), many=True,
            choices=("harmonic", "ewma"),
        )
        with pytest.raises(ConfigError, match="bogus"):
            param.coerce("harmonic,bogus")

    def test_flag_name_dashes(self):
        assert Param("rtt_wifi", float, 0.05).flag == "--rtt-wifi"


class TestParamSchema:
    def test_unknown_name_lists_valid_ones(self):
        schema = ParamSchema((Param("trials", int, 20), Param("seed", int, 1)))
        with pytest.raises(ConfigError, match="trials, seed"):
            schema.resolve({"clients": 3})

    def test_resolve_merges_defaults_and_overrides(self):
        schema = ParamSchema((Param("trials", int, 20), Param("seed", int, 1)))
        assert schema.resolve({"seed": "9"}) == {"trials": 20, "seed": 9}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ParamSchema((Param("a", int, 1), Param("a", int, 2)))


class TestRegistry:
    def test_all_known_experiments_registered(self):
        assert experiment_ids() == ALL_IDS

    def test_unknown_id_raises_with_known_ids(self):
        with pytest.raises(ConfigError, match="fig1"):
            get_experiment("fig99")

    def test_conflicting_reregistration_rejected(self):
        clone = ExperimentDef(
            experiment_id="fig1",
            title="imposter",
            kind="single",
            schema=ParamSchema(()),
            build=lambda params: None,
        )
        with pytest.raises(ConfigError, match="already registered"):
            register(clone)

    def test_reregistering_same_object_is_idempotent(self):
        definition = get_experiment("fig1")
        assert register(definition) is definition

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            ExperimentDef(
                experiment_id="zz",
                title="",
                kind="banana",
                schema=ParamSchema(()),
                build=lambda params: None,
            )

    def test_smoke_params_validated_against_schema(self):
        with pytest.raises(ConfigError, match="trials"):
            ExperimentDef(
                experiment_id="zz",
                title="",
                kind="single",
                schema=ParamSchema(()),
                build=lambda params: None,
                smoke_params={"trials": 1},
            )


class TestRegistryCompletenessGate:
    """The CI gate: schema + tiny-scale Study smoke for every id, and
    bench coverage that cannot drift from the registry."""

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_smoke_runs_via_study_and_matches_legacy_wrapper(self, experiment_id):
        definition = get_experiment(experiment_id)
        assert len(definition.schema) > 0
        assert "seed" in definition.schema  # plumbed uniformly
        via_study = Study(experiment_id, **definition.smoke_params).run()
        cell = via_study.only()
        assert cell.result.experiment_id == experiment_id
        assert cell.result.rendered.strip()
        assert cell.columns  # dense batch columns extracted per label
        # Cross-API equality: the pre-redesign function surface returns
        # byte-identical output for the same params.
        via_wrapper = WRAPPERS[experiment_id](**definition.smoke_params)
        assert via_wrapper.rendered == cell.result.rendered
        assert via_wrapper.raw == cell.result.raw

    def test_every_registry_id_is_exercised_by_a_benchmark(self):
        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        sources = "\n".join(
            path.read_text() for path in sorted(bench_dir.glob("bench_*.py"))
        )
        for experiment_id in experiment_ids():
            assert f'"{experiment_id}"' in sources, (
                f"no benchmark references experiment {experiment_id!r}; "
                "bench coverage drifted from the registry"
            )
