"""QoE metrics accounting."""

import pytest

from repro.core.metrics import QoEMetrics


class TestTrafficFractions:
    def test_per_phase_fractions(self):
        metrics = QoEMetrics()
        metrics.record_chunk(0, 600, prebuffering=True)
        metrics.record_chunk(1, 400, prebuffering=True)
        metrics.record_chunk(0, 100, prebuffering=False)
        metrics.record_chunk(1, 300, prebuffering=False)
        assert metrics.traffic_fraction(0, "prebuffer") == pytest.approx(0.6)
        assert metrics.traffic_fraction(0, "rebuffer") == pytest.approx(0.25)
        assert metrics.traffic_fraction(0, "all") == pytest.approx(0.5)

    def test_empty_phase_is_zero(self):
        assert QoEMetrics().traffic_fraction(0, "prebuffer") == 0.0

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            QoEMetrics().traffic_fraction(0, "warmup")

    def test_request_counting(self):
        metrics = QoEMetrics()
        metrics.record_chunk(0, 10, True)
        metrics.record_chunk(0, 10, False)
        assert metrics.requests_by_path == {0: 2}


class TestStalls:
    def test_stall_durations(self):
        metrics = QoEMetrics()
        metrics.begin_stall(10.0)
        metrics.end_stall(12.5)
        assert metrics.total_stall_time == pytest.approx(2.5)
        assert len(metrics.stalls) == 1

    def test_end_clamped_to_start(self):
        metrics = QoEMetrics()
        metrics.begin_stall(10.0)
        metrics.end_stall(9.0)  # interpolated credit before the stall
        assert metrics.total_stall_time == 0.0

    def test_unmatched_end_ignored(self):
        metrics = QoEMetrics()
        metrics.end_stall(5.0)
        assert metrics.stalls == []

    def test_open_stall_not_counted(self):
        metrics = QoEMetrics()
        metrics.begin_stall(10.0)
        assert metrics.total_stall_time == 0.0


class TestCycles:
    def test_cycle_durations(self):
        metrics = QoEMetrics()
        metrics.begin_rebuffer_cycle(30.0, level_s=9.5)
        metrics.end_rebuffer_cycle(34.0)
        metrics.begin_rebuffer_cycle(60.0, level_s=9.9)
        metrics.end_rebuffer_cycle(63.0)
        assert metrics.completed_cycle_durations() == [pytest.approx(4.0), pytest.approx(3.0)]

    def test_open_cycle_excluded(self):
        metrics = QoEMetrics()
        metrics.begin_rebuffer_cycle(30.0, level_s=9.0)
        assert metrics.completed_cycle_durations() == []


class TestDerived:
    def test_startup_delay(self):
        metrics = QoEMetrics()
        metrics.session_started_at = 2.0
        metrics.playback_started_at = 9.5
        assert metrics.startup_delay == pytest.approx(7.5)

    def test_startup_delay_none_before_playback(self):
        assert QoEMetrics().startup_delay is None

    def test_summary_keys(self):
        metrics = QoEMetrics()
        metrics.record_chunk(0, 100, True)
        summary = metrics.summary()
        for key in (
            "startup_delay_s",
            "stall_count",
            "rebuffer_cycles",
            "prebuffer_fraction_path0",
            "failovers",
            "peak_out_of_order",
        ):
            assert key in summary

    def test_first_video_byte_delay(self):
        metrics = QoEMetrics()
        metrics.path_bootstrap[1] = (1.0, 3.5)
        assert metrics.first_video_byte_delay(1) == pytest.approx(2.5)
        assert metrics.first_video_byte_delay(0) is None
