"""Access tokens and the signature cipher (footnote 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cdn.signature import OP_REVERSE, OP_SWAP, SignatureCipher, decipher
from repro.cdn.tokens import TokenMint
from repro.errors import SignatureError, TokenError


class TestTokenMint:
    def make(self, ttl=3600.0):
        return TokenMint(secret=b"test-secret", ttl_s=ttl)

    def test_issue_verify_roundtrip(self):
        mint = self.make()
        token = mint.issue(100.0, "videoVIDEO1", "1.2.3.4", pool="wifi-net")
        claims = mint.verify(token, now=200.0, video_id="videoVIDEO1", pool="wifi-net")
        assert claims.client_address == "1.2.3.4"
        assert claims.expires_at == pytest.approx(3700.0)

    def test_expired_token_rejected(self):
        mint = self.make(ttl=10.0)
        token = mint.issue(0.0, "videoVIDEO1", "c", pool="p")
        with pytest.raises(TokenError, match="expired"):
            mint.verify(token, now=11.0, video_id="videoVIDEO1", pool="p")

    def test_valid_until_the_hour(self):
        # Paper: tokens are valid for an hour (§4).
        mint = TokenMint(secret=b"k")
        token = mint.issue(0.0, "videoVIDEO1", "c", pool="p")
        assert mint.verify(token, now=3599.0, video_id="videoVIDEO1", pool="p")
        with pytest.raises(TokenError):
            mint.verify(token, now=3601.0, video_id="videoVIDEO1", pool="p")

    def test_wrong_video_rejected(self):
        mint = self.make()
        token = mint.issue(0.0, "videoVIDEO1", "c", pool="p")
        with pytest.raises(TokenError, match="different video"):
            mint.verify(token, now=1.0, video_id="otherVIDEO2", pool="p")

    def test_wrong_pool_rejected(self):
        # The §4 binding: a token matches one video server pool.
        mint = self.make()
        token = mint.issue(0.0, "videoVIDEO1", "c", pool="wifi-net")
        with pytest.raises(TokenError, match="pool"):
            mint.verify(token, now=1.0, video_id="videoVIDEO1", pool="lte-net")

    def test_tampered_token_rejected(self):
        mint = self.make()
        token = mint.issue(0.0, "videoVIDEO1", "c", pool="p")
        tampered = token.replace("videoVIDEO1", "evilVIDEOx1")
        with pytest.raises(TokenError):
            mint.verify(tampered, now=1.0, video_id="evilVIDEOx1", pool="p")

    def test_foreign_mint_rejected(self):
        token = TokenMint(secret=b"a").issue(0.0, "videoVIDEO1", "c", pool="p")
        with pytest.raises(TokenError, match="signature"):
            TokenMint(secret=b"b").verify(token, now=1.0, video_id="videoVIDEO1", pool="p")

    def test_malformed_token_rejected(self):
        with pytest.raises(TokenError):
            self.make().verify("garbage", now=0.0, video_id="v", pool="p")

    def test_operation_scope(self):
        mint = self.make()
        token = mint.issue(0.0, "videoVIDEO1", "c", pool="p", operations="play,seek")
        assert mint.verify(token, 1.0, "videoVIDEO1", "p", operation="seek")
        with pytest.raises(TokenError, match="not authorized"):
            mint.verify(token, 1.0, "videoVIDEO1", "p", operation="delete")

    def test_separator_in_claim_rejected(self):
        mint = self.make()
        with pytest.raises(TokenError):
            mint.issue(0.0, "bad~video~1", "c", pool="p")

    def test_mint_validation(self):
        with pytest.raises(TokenError):
            TokenMint(secret=b"")
        with pytest.raises(TokenError):
            TokenMint(secret=b"k", ttl_s=0.0)


class TestSignatureCipher:
    def test_encipher_changes_signature(self):
        cipher = SignatureCipher(((OP_REVERSE, 0), (OP_SWAP, 3)), pad=2)
        assert cipher.encipher("abcdef123") != "abcdef123"

    def test_decoder_roundtrip(self):
        cipher = SignatureCipher(((OP_REVERSE, 0), (OP_SWAP, 3), (OP_REVERSE, 0)), pad=3)
        enciphered = cipher.encipher("da0a1b2c3d4e5f")
        assert decipher(enciphered, cipher.decoder_program()) == "da0a1b2c3d4e5f"

    @given(
        st.text(alphabet="0123456789abcdefABCDEF.", min_size=8, max_size=64),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_random_programs(self, signature, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        cipher = SignatureCipher.random(rng, steps=5, pad=3)
        assert decipher(cipher.encipher(signature), cipher.decoder_program()) == signature

    def test_empty_signature_rejected(self):
        cipher = SignatureCipher(((OP_REVERSE, 0),), pad=1)
        with pytest.raises(SignatureError):
            cipher.encipher("")

    def test_unknown_operation_rejected(self):
        with pytest.raises(SignatureError):
            decipher("abc", [("rot13", 0)])

    def test_decoder_page_size_realistic(self):
        cipher = SignatureCipher(((OP_REVERSE, 0),))
        assert cipher.decoder_page_size() >= 64 * 1024

    def test_random_requires_steps(self, rng):
        with pytest.raises(SignatureError):
            SignatureCipher.random(rng, steps=0)
