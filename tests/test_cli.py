"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_play_defaults(self):
        args = build_parser().parse_args(["play"])
        assert args.profile == "testbed"
        assert args.scheduler == "harmonic"
        assert args.stop == "prebuffer"

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_every_registered_experiment_is_parseable(self):
        for key in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", key])
            assert args.id == key


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output and "testbed" in output

    def test_play_quick(self, capsys):
        code = main(
            ["play", "--profile", "testbed", "--seed", "2", "--prebuffer", "20",
             "--duration", "90", "--stop", "prebuffer"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "start-up delay" in output
        assert "prebuffer-complete" in output

    def test_play_single_path(self, capsys):
        code = main(
            ["play", "--paths", "1", "--prebuffer", "20", "--duration", "90"]
        )
        assert code == 0

    def test_play_ratio_with_chunk(self, capsys):
        code = main(
            ["play", "--scheduler", "ratio", "--chunk", "1MB", "--prebuffer", "20",
             "--duration", "90"]
        )
        assert code == 0

    def test_experiment_x3(self, capsys):
        assert main(["experiment", "x3"]) == 0
        assert "harmonic" in capsys.readouterr().out

    def test_experiment_fig2_few_trials(self, capsys):
        assert main(["experiment", "fig2", "--trials", "3"]) == 0
        assert "MSPlayer" in capsys.readouterr().out

    def test_adaptive_quick(self, capsys):
        code = main(
            ["adaptive", "--controller", "fixed", "--itag", "18",
             "--profile", "testbed", "--duration", "40"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean bitrate" in output
