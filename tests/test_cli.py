"""Command-line interface (generated from the study registry)."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main
from repro.study import experiment_ids, get_experiment

#: Knobs that exist on SOME experiment — each must be rejected on every
#: id whose schema does not declare it (satellite: schema-driven
#: validation closes the silently-accepted-knob paths).
_KNOWN_FLAGS = {
    "trials": ("--trials", "3"),
    "replicates": ("--replicates", "2"),
    "clients": ("--clients", "2"),
    "samples": ("--samples", "50"),
    "thetas": ("--thetas", "2.0"),
    "policies": ("--policies", "static"),
}

_ALL_IDS = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "table1",
    "x1", "x2", "x3", "x6", "x8", "x9",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_play_defaults(self):
        args = build_parser().parse_args(["play"])
        assert args.profile == "testbed"
        assert args.scheduler == "harmonic"
        assert args.stop == "prebuffer"

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_every_registered_experiment_is_parseable(self):
        for key in experiment_ids():
            args = build_parser().parse_args(["experiment", key])
            assert args.id == key

    def test_every_schema_param_has_a_generated_flag(self):
        for key in experiment_ids():
            definition = get_experiment(key)
            argv = ["experiment", key]
            for param in definition.schema:
                value = (
                    ",".join(map(str, param.default))
                    if param.many
                    else str(param.default)
                )
                argv += [param.flag, value]
            # Unparseable flags would SystemExit here.
            args = build_parser().parse_args(argv)
            assert args.id == key

    def test_population_knobs_parse(self):
        args = build_parser().parse_args(
            ["experiment", "x6", "--replicates", "4", "--clients", "20"]
        )
        assert args.replicates == 4 and args.clients == 20

    def test_common_flags_exist_on_every_id(self):
        for key in experiment_ids():
            args = build_parser().parse_args(
                ["experiment", key, "--jobs", "2", "--ipc", "shm",
                 "--set", "seed=1", "--save", "out"]
            )
            assert args.jobs == "2" and args.ipc == "shm"
            assert args.set == ["seed=1"] and args.save == "out"


class TestSchemaRejectionWall:
    """Every id rejects every knob its schema does not declare."""

    @pytest.mark.parametrize("experiment_id", _ALL_IDS)
    def test_unknown_knobs_exit_2(self, experiment_id, capsys):
        schema = get_experiment(experiment_id).schema
        rejected = 0
        for name, (flag, value) in _KNOWN_FLAGS.items():
            if name in schema:
                continue
            code = main(["experiment", experiment_id, flag, value])
            err = capsys.readouterr().err
            assert code == 2, (experiment_id, flag)
            assert flag in err
            rejected += 1
        assert rejected > 0  # every id has at least one foreign knob

    @pytest.mark.parametrize("experiment_id", _ALL_IDS)
    def test_unknown_set_key_exits_2(self, experiment_id, capsys):
        code = main(["experiment", experiment_id, "--set", "bogus_knob=1"])
        assert code == 2
        assert "bogus_knob" in capsys.readouterr().err

    def test_registry_is_exactly_the_known_experiments(self):
        assert experiment_ids() == _ALL_IDS


class TestHelpSnapshots:
    """`--help` is generated from the schema — pin the load-bearing
    content (every schema flag plus the common study flags) per id."""

    @pytest.mark.parametrize("experiment_id", _ALL_IDS)
    def test_help_lists_every_schema_flag(self, experiment_id, capsys):
        code = main(["experiment", experiment_id, "--help"])
        assert code == 0
        help_text = capsys.readouterr().out
        for param in get_experiment(experiment_id).schema:
            assert param.flag in help_text, (experiment_id, param.flag)
        for common in ("--jobs", "--ipc", "--set", "--grid", "--save"):
            assert common in help_text

    def test_experiment_overview_lists_ids(self, capsys):
        code = main(["experiment", "--help"])
        assert code == 0
        out = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output and "testbed" in output
        # Registry metadata is rendered: kinds and param lines.
        assert "[population]" in output and "trials: int" in output

    def test_play_quick(self, capsys):
        code = main(
            ["play", "--profile", "testbed", "--seed", "2", "--prebuffer", "20",
             "--duration", "90", "--stop", "prebuffer"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "start-up delay" in output
        assert "prebuffer-complete" in output

    def test_play_single_path(self, capsys):
        code = main(
            ["play", "--paths", "1", "--prebuffer", "20", "--duration", "90"]
        )
        assert code == 0

    def test_play_ratio_with_chunk(self, capsys):
        code = main(
            ["play", "--scheduler", "ratio", "--chunk", "1MB", "--prebuffer", "20",
             "--duration", "90"]
        )
        assert code == 0

    def test_experiment_x3(self, capsys):
        assert main(["experiment", "x3"]) == 0
        assert "harmonic" in capsys.readouterr().out

    def test_experiment_x6_population(self, capsys):
        code = main(
            ["experiment", "x6", "--replicates", "1", "--clients", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "EXP-X6" in output and "rotate" in output

    def test_population_knobs_rejected_elsewhere(self, capsys):
        code = main(["experiment", "fig2", "--replicates", "2"])
        assert code == 2
        assert "--replicates" in capsys.readouterr().err

    def test_trials_knob_rejected_on_population_experiment(self, capsys):
        code = main(["experiment", "x6", "--trials", "50"])
        assert code == 2
        assert "--trials" in capsys.readouterr().err

    def test_invalid_population_counts_fail_cleanly(self, capsys):
        # A one-line error + exit 2, not a ConfigError traceback.
        for flag in ("--replicates", "--clients"):
            code = main(["experiment", "x6", flag, "0"])
            assert code == 2
            assert ">= 1" in capsys.readouterr().err

    def test_experiment_fig2_few_trials(self, capsys):
        assert main(["experiment", "fig2", "--trials", "3"]) == 0
        assert "MSPlayer" in capsys.readouterr().out

    def test_set_override_equivalent_to_flag(self, capsys):
        assert main(["experiment", "fig2", "--trials", "2", "--seed", "77"]) == 0
        by_flag = capsys.readouterr().out
        assert main(["experiment", "fig2", "--trials", "2", "--set", "seed=77"]) == 0
        by_set = capsys.readouterr().out
        assert by_flag == by_set

    def test_grid_runs_every_cell(self, capsys):
        code = main(
            ["experiment", "fig2", "--trials", "2", "--grid", "seed=2014,2015"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Fig. 2") == 2
        assert "seed=2014" in out and "seed=2015" in out

    def test_bad_set_syntax_exits_2(self, capsys):
        code = main(["experiment", "fig2", "--set", "trials"])
        assert code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_save_archives_study_result(self, tmp_path, capsys):
        base = tmp_path / "fig1-run"
        code = main(
            ["experiment", "fig1", "--thetas", "2.0", "--save", str(base)]
        )
        assert code == 0
        manifest = json.loads(pathlib.Path(f"{base}.json").read_text())
        assert manifest["experiment"] == "fig1"
        assert pathlib.Path(f"{base}.npz").exists()

    def test_explicit_jobs_wins_over_broken_repro_jobs_env(self, capsys, monkeypatch):
        # Engine resolution is lazy: a stale REPRO_JOBS must not poison
        # runs whose backend was chosen explicitly...
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert main(["experiment", "fig2", "--trials", "1", "--jobs", "1"]) == 0
        capsys.readouterr()
        # ...but still fails fast when the env IS the selector.
        code = main(["experiment", "fig2", "--trials", "1"])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_adaptive_quick(self, capsys):
        code = main(
            ["adaptive", "--controller", "fixed", "--itag", "18",
             "--profile", "testbed", "--duration", "40"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean bitrate" in output


class TestGridUsageErrors:
    """`--grid` typos die as exit-code-2 usage errors, never run short."""

    def test_empty_item_exits_2(self, capsys):
        code = main(
            ["experiment", "fig2", "--trials", "1", "--grid", "seed=1,,2"]
        )
        assert code == 2
        assert "empty value" in capsys.readouterr().err

    def test_trailing_comma_exits_2(self, capsys):
        code = main(
            ["experiment", "fig2", "--trials", "1", "--grid", "seed=1,2,"]
        )
        assert code == 2
        assert "empty value" in capsys.readouterr().err

    def test_empty_semicolon_cell_exits_2(self, capsys):
        code = main(
            ["experiment", "fig4", "--trials", "1",
             "--grid", "prebuffers=20;;40"]
        )
        assert code == 2
        assert "empty value" in capsys.readouterr().err

    def test_all_empty_value_exits_2(self, capsys):
        code = main(
            ["experiment", "fig2", "--trials", "1", "--grid", "seed="]
        )
        assert code == 2
        assert "at least one value" in capsys.readouterr().err

    def test_duplicate_axis_exits_2(self, capsys):
        code = main(
            ["experiment", "fig2", "--trials", "1",
             "--grid", "seed=1", "--grid", "seed=2"]
        )
        assert code == 2
        assert "given twice" in capsys.readouterr().err

    def test_choice_value_containing_equals_exits_2_cleanly(self, capsys):
        # The value is split on the FIRST '=', so 'schedulers=harmonic=2'
        # aims the bogus choice 'harmonic=2' at the schema — a one-line
        # usage error, not a traceback or a silently truncated value.
        code = main(
            ["experiment", "fig3", "--trials", "1",
             "--grid", "schedulers=harmonic=2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "harmonic=2" in err and err.startswith("error:")


class TestCacheCLI:
    def _sweep(self, tmp_path, *extra):
        return main(
            ["experiment", "fig2", "--trials", "2",
             "--grid", "seed=2014,2015", "--cache", str(tmp_path / "cache"),
             *extra]
        )

    def test_cache_flag_reports_and_resume_hits(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        first = capsys.readouterr()
        assert "2 miss(es)" in first.err
        # --resume is the same flag under its natural name.
        code = main(
            ["experiment", "fig2", "--trials", "2",
             "--grid", "seed=2014,2015", "--resume", str(tmp_path / "cache")]
        )
        assert code == 0
        second = capsys.readouterr()
        assert "0 work units submitted" in second.err
        assert first.out == second.out

    def test_cached_save_is_byte_identical(self, tmp_path, capsys):
        assert self._sweep(tmp_path, "--save", str(tmp_path / "a")) == 0
        assert self._sweep(tmp_path, "--save", str(tmp_path / "b")) == 0
        capsys.readouterr()
        for suffix in (".json", ".npz"):
            first = (tmp_path / "a").with_suffix(suffix).read_bytes()
            second = (tmp_path / "b").with_suffix(suffix).read_bytes()
            assert first == second, suffix

    def test_no_cache_flag_no_summary_line(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["experiment", "fig2", "--trials", "1"]) == 0
        assert "work units submitted" not in capsys.readouterr().err

    def test_repro_cache_env_is_the_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        assert main(["experiment", "fig2", "--trials", "1"]) == 0
        assert "1 miss(es)" in capsys.readouterr().err
        assert main(["experiment", "fig2", "--trials", "1"]) == 0
        assert "0 work units submitted" in capsys.readouterr().err

    def test_cache_ls_gc_verify(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert main(["cache", "ls", cache_dir]) == 0
        listing = capsys.readouterr().out
        assert "2 entries" in listing and "fig2" in listing
        assert main(["cache", "ls", "--json", cache_dir]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert len(manifest["entries"]) == 2
        assert all(entry["complete"] for entry in manifest["entries"])
        assert main(["cache", "verify", cache_dir]) == 0
        assert "2 ok, 0 bad" in capsys.readouterr().out
        assert main(["cache", "gc", cache_dir]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert main(["cache", "gc", "--all", cache_dir]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "ls", cache_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_verify_flags_corruption(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        victim = sorted((cache_dir / "entries").glob("*.npz"))[0]
        victim.write_bytes(b"junk")
        assert main(["cache", "verify", str(cache_dir)]) == 1
        captured = capsys.readouterr()
        assert "1 ok, 1 bad" in captured.out
        assert "bad" in captured.err

    def test_cache_without_dir_or_env_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        for action in ("ls", "gc", "verify"):
            assert main(["cache", action]) == 2
            assert "no cache directory" in capsys.readouterr().err

    def test_cache_env_supplies_the_dir(self, tmp_path, capsys, monkeypatch):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        assert main(["cache", "ls"]) == 0
        assert "2 entries" in capsys.readouterr().out


class TestCacheGCBounds:
    """`cache gc --max-bytes/--max-age` and `serve --gc --keep-days`."""

    def _sweep(self, tmp_path):
        return main(
            ["experiment", "fig2", "--trials", "2",
             "--grid", "seed=2014,2015", "--cache", str(tmp_path / "cache")]
        )

    def test_gc_max_bytes_evicts_oldest_first(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        # A budget of one entry's size keeps only the newest entry.
        assert main(["cache", "gc", "--max-bytes", "0", str(tmp_path / "cache")]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "ls", str(tmp_path / "cache")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_gc_max_bytes_accepts_size_suffixes(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--max-bytes", "1GB", str(tmp_path / "cache")]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_gc_max_age_spares_fresh_entries(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--max-age", "30", str(tmp_path / "cache")]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert main(["cache", "gc", "--max-age", "0", str(tmp_path / "cache")]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_gc_negative_max_age_exits_2(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        code = main(["cache", "gc", "--max-age", "-1", str(tmp_path / "cache")])
        assert code == 2
        assert "--max-age" in capsys.readouterr().err

    def test_gc_unparseable_max_bytes_exits_2(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        code = main(["cache", "gc", "--max-bytes", "lots", str(tmp_path / "cache")])
        assert code == 2

    def test_serve_gc_purges_completed_studies(self, tmp_path, capsys):
        from repro.serve.broker import Broker
        from repro.serve.cells import cell_archive, execute_cell
        from repro.sim.execution import SerialEngine

        db = tmp_path / "queue.sqlite3"
        broker = Broker(db)
        job = broker.submit(
            {"experiment": "fig2", "params": {"trials": 1, "seed": 2014}, "axes": {}}
        )
        lease = broker.lease("w0")
        cell = execute_cell(
            "fig2", {"trials": 1, "seed": 2014}, engine=SerialEngine()
        )
        manifest, npz = cell_archive("fig2", cell)
        broker.complete(
            job["job_id"], 0, manifest, npz,
            lease_id=lease["lease_id"], worker="w0",
        )
        broker.close()
        assert main(["serve", "--db", str(db), "--gc", "--keep-days", "0"]) == 0
        out = capsys.readouterr().out
        assert "purged 1 cell blob(s)" in out
        # Second pass finds nothing left to purge.
        assert main(["serve", "--db", str(db), "--gc", "--keep-days", "0"]) == 0
        assert "purged 0 cell blob(s)" in capsys.readouterr().out

    def test_serve_gc_negative_keep_days_exits_2(self, tmp_path, capsys):
        db = tmp_path / "queue.sqlite3"
        code = main(["serve", "--db", str(db), "--gc", "--keep-days", "-2"])
        assert code == 2
        assert "keep_days" in capsys.readouterr().err
