"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_play_defaults(self):
        args = build_parser().parse_args(["play"])
        assert args.profile == "testbed"
        assert args.scheduler == "harmonic"
        assert args.stop == "prebuffer"

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_every_registered_experiment_is_parseable(self):
        for key in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", key])
            assert args.id == key

    def test_population_knobs_parse(self):
        args = build_parser().parse_args(
            ["experiment", "x6", "--replicates", "4", "--clients", "20"]
        )
        assert args.replicates == 4 and args.clients == 20


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output and "testbed" in output

    def test_play_quick(self, capsys):
        code = main(
            ["play", "--profile", "testbed", "--seed", "2", "--prebuffer", "20",
             "--duration", "90", "--stop", "prebuffer"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "start-up delay" in output
        assert "prebuffer-complete" in output

    def test_play_single_path(self, capsys):
        code = main(
            ["play", "--paths", "1", "--prebuffer", "20", "--duration", "90"]
        )
        assert code == 0

    def test_play_ratio_with_chunk(self, capsys):
        code = main(
            ["play", "--scheduler", "ratio", "--chunk", "1MB", "--prebuffer", "20",
             "--duration", "90"]
        )
        assert code == 0

    def test_experiment_x3(self, capsys):
        assert main(["experiment", "x3"]) == 0
        assert "harmonic" in capsys.readouterr().out

    def test_experiment_x6_population(self, capsys):
        code = main(
            ["experiment", "x6", "--replicates", "1", "--clients", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "EXP-X6" in output and "rotate" in output

    def test_population_knobs_rejected_elsewhere(self, capsys):
        code = main(["experiment", "fig2", "--replicates", "2"])
        assert code == 2
        assert "--replicates" in capsys.readouterr().err

    def test_trials_knob_rejected_on_population_experiment(self, capsys):
        code = main(["experiment", "x6", "--trials", "50"])
        assert code == 2
        assert "--trials" in capsys.readouterr().err

    def test_invalid_population_counts_fail_cleanly(self, capsys):
        # A one-line error + exit 2, not a ConfigError traceback.
        for flag in ("--replicates", "--clients"):
            code = main(["experiment", "x6", flag, "0"])
            assert code == 2
            assert ">= 1" in capsys.readouterr().err

    def test_experiment_fig2_few_trials(self, capsys):
        assert main(["experiment", "fig2", "--trials", "3"]) == 0
        assert "MSPlayer" in capsys.readouterr().out

    def test_adaptive_quick(self, capsys):
        code = main(
            ["adaptive", "--controller", "fixed", "--itag", "18",
             "--profile", "testbed", "--duration", "40"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean bitrate" in output
