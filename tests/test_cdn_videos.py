"""Video formats, metadata, byte/time arithmetic, catalog."""

import numpy as np
import pytest

from repro.cdn.catalog import Catalog, make_video_id
from repro.cdn.videos import DEFAULT_ITAG, FORMATS, VideoAsset, VideoMeta
from repro.errors import ConfigError, VideoNotFoundError


def meta(duration=300.0, **kwargs):
    defaults = dict(
        video_id="qjT4T2gU9sM", title="t", author="a", duration_s=duration
    )
    defaults.update(kwargs)
    return VideoMeta(**defaults)


class TestVideoMeta:
    def test_paper_itag_is_720p_mp4(self):
        fmt = FORMATS[DEFAULT_ITAG]
        assert fmt.resolution == "720p" and fmt.container == "mp4"

    def test_eleven_literal_id_enforced(self):
        with pytest.raises(ConfigError):
            meta(video_id="short")

    def test_watch_url_shape(self):
        # The §3.1 example URL.
        assert meta().watch_url == "http://www.youtube.com/watch?v=qjT4T2gU9sM"

    def test_unknown_itag_rejected(self):
        with pytest.raises(ConfigError):
            meta(itags=(22, 999))

    def test_format_lookup_restricted_to_offered(self):
        video = meta(itags=(22,))
        with pytest.raises(ConfigError):
            video.format(18)

    def test_duration_positive(self):
        with pytest.raises(ConfigError):
            meta(duration=0.0)


class TestVideoAsset:
    def test_size_from_bitrate(self):
        asset = VideoAsset(meta(duration=100.0), 22)
        expected = int(round(100.0 * FORMATS[22].total_bitrate_bytes_per_s))
        assert asset.size_bytes == expected

    def test_bytes_for_playback_clamped_to_file(self):
        asset = VideoAsset(meta(duration=10.0), 22)
        assert asset.bytes_for_playback(100.0) == asset.size_bytes

    def test_playback_time_roundtrip(self):
        asset = VideoAsset(meta(duration=120.0), 22)
        num_bytes = asset.bytes_for_playback(40.0)
        assert asset.playback_time(num_bytes) == pytest.approx(40.0, rel=1e-6)

    def test_negative_rejected(self):
        asset = VideoAsset(meta(), 22)
        with pytest.raises(ConfigError):
            asset.bytes_for_playback(-1.0)
        with pytest.raises(ConfigError):
            asset.playback_time(-1)

    def test_higher_quality_is_bigger(self):
        video = meta(itags=(18, 22, 37))
        sizes = [VideoAsset(video, itag).size_bytes for itag in (18, 22, 37)]
        assert sizes == sorted(sizes)


class TestCatalog:
    def test_add_get(self):
        catalog = Catalog()
        video = catalog.add(meta())
        assert catalog.get(video.video_id) is video
        assert video.video_id in catalog

    def test_missing_video(self):
        with pytest.raises(VideoNotFoundError):
            Catalog().get("aaaaaaaaaaa")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add(meta())
        with pytest.raises(ConfigError):
            catalog.add(meta())

    def test_asset_helper(self):
        catalog = Catalog()
        catalog.add(meta())
        asset = catalog.asset("qjT4T2gU9sM")
        assert asset.itag == DEFAULT_ITAG

    def test_make_video_id_shape(self, rng):
        for _ in range(20):
            video_id = make_video_id(rng)
            assert len(video_id) == 11

    def test_synthetic_population(self, rng):
        catalog = Catalog.synthetic(rng, count=30, copyrighted_fraction=0.5)
        assert len(catalog) == 30
        flags = [catalog.get(v).copyrighted for v in catalog.ids()]
        assert any(flags) and not all(flags)
        durations = [catalog.get(v).duration_s for v in catalog.ids()]
        assert all(30.0 <= d <= 3600.0 for d in durations)

    def test_popularity_weights_sum_to_one(self, rng):
        catalog = Catalog.synthetic(rng, count=25)
        weights = catalog.popularity_weights(rng)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert set(weights) == set(catalog.ids())

    def test_popularity_is_skewed(self, rng):
        catalog = Catalog.synthetic(rng, count=50)
        weights = sorted(catalog.popularity_weights(rng, zipf_s=1.2).values(), reverse=True)
        assert weights[0] > 5 * weights[-1]

    def test_synthetic_validation(self, rng):
        with pytest.raises(ConfigError):
            Catalog.synthetic(rng, count=0)
        with pytest.raises(ConfigError):
            Catalog.synthetic(rng, count=5, copyrighted_fraction=1.5)
