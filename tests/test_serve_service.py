"""The study service end to end: HTTP broker, pull workers, ServiceEngine.

Real sockets, real threads: a stdlib :mod:`repro.serve.httpd` server in
front of a :class:`Broker`, ``run_worker`` loops pulling over HTTP, and
``Study.run`` going through :class:`ServiceEngine`.  The acceptance bar
is the ISSUE 9 one — the archive a service run saves is **byte
identical** to an in-process run, a killed worker's cell requeues and
the sweep completes, and a poisoned cell quarantines as a per-cell
error instead of sinking the study.
"""

import filecmp
import threading
import time
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.errors import ConfigError, ServiceError
from repro.serve.broker import Broker
from repro.serve.client import BrokerClient
from repro.serve.engine import ServiceEngine, resolve_broker
from repro.serve.httpd import create_server, run_server
from repro.serve.worker import run_worker
from repro.study import Study
from repro.study.params import Param, ParamSchema
from repro.study.registry import (
    _REGISTRY,
    ExperimentDef,
    ExperimentPlan,
    get_experiment,
    register,
)


@contextmanager
def service_stack(
    tmp_path,
    *,
    workers=1,
    lease_timeout=30.0,
    max_attempts=3,
    cache=None,
    start_workers=True,
):
    """A live broker + HTTP server + worker threads, torn down cleanly."""
    log: list[str] = []
    broker = Broker(
        tmp_path / "queue.sqlite3",
        cache=cache,
        lease_timeout=lease_timeout,
        max_attempts=max_attempts,
        log=log.append,
    )
    server = create_server(broker)
    url = f"http://127.0.0.1:{server.server_address[1]}"
    server_thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    server_thread.start()
    stop = threading.Event()
    threads: list[threading.Thread] = []

    def start_worker(worker_id: str) -> None:
        thread = threading.Thread(
            target=run_worker,
            args=(url,),
            kwargs={
                "jobs": "serial",
                "poll": 0.02,
                "stop": stop,
                "worker_id": worker_id,
                "log": log.append,
            },
            daemon=True,
        )
        thread.start()
        threads.append(thread)

    if start_workers:
        for index in range(workers):
            start_worker(f"w{index}")
    try:
        yield SimpleNamespace(
            broker=broker,
            url=url,
            log=log,
            stop=stop,
            start_worker=start_worker,
        )
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        server.shutdown()
        server_thread.join(timeout=10)
        server.server_close()
        broker.close()


@contextmanager
def injectable_fig2(experiment_id="svc_fig2_wrapped"):
    """A temporarily registered fig2 wrapper with failure/delay knobs.

    ``boom=True`` makes the cell's render raise (worker-side failure,
    submit-side validation untouched); ``delay`` stretches the cell past
    a short lease timeout to exercise heartbeats.
    """
    fig2 = get_experiment("fig2")

    def build(params):
        plan = fig2.build({"trials": params["trials"], "seed": params["seed"]})

        def render(results, _inner=plan.render, _params=dict(params)):
            if _params["delay"]:
                time.sleep(_params["delay"])
            if _params["boom"]:
                raise RuntimeError("boom: injected cell failure")
            return _inner(results)

        return ExperimentPlan(plan.campaign, render)

    definition = ExperimentDef(
        experiment_id=experiment_id,
        title="fig2 wrapper with injectable failure/delay (tests only)",
        kind="trials",
        schema=ParamSchema(
            (
                Param("trials", int, 1, minimum=1),
                Param("seed", int, 2014),
                Param("boom", bool, False),
                Param("delay", float, 0.0, minimum=0.0),
            )
        ),
        build=build,
    )
    register(definition)
    try:
        yield experiment_id
    finally:
        _REGISTRY.pop(experiment_id, None)


def wait_done(client: BrokerClient, job_id: str, deadline_s: float = 60.0) -> dict:
    deadline = time.monotonic() + deadline_s
    finished = -1
    while True:
        status = client.status(job_id, wait=1.0, done=finished)
        finished = status["counts"].get("done", 0) + status["counts"].get("failed", 0)
        if status["state"] != "running":
            return status
        assert time.monotonic() < deadline, f"job stuck: {status}"


class TestByteIdentity:
    def test_service_archive_identical_to_local_run(self, tmp_path):
        study = Study("fig2", trials=2).grid(seed=[2014, 2015])
        messages: list[str] = []
        with service_stack(tmp_path, workers=2) as stack:
            engine = ServiceEngine(stack.url, poll=0.05, progress=messages.append)
            service_result = study.run(engine=engine)
        local_result = study.run(jobs="serial")

        assert service_result.errors == {}
        assert service_result.rendered == local_result.rendered
        assert service_result.column_mismatches(local_result) == []
        service_json, service_npz = service_result.save(tmp_path / "service-run")
        local_json, local_npz = local_result.save(tmp_path / "local-run")
        assert filecmp.cmp(service_json, local_json, shallow=False)
        assert filecmp.cmp(service_npz, local_npz, shallow=False)

        info = service_result.cache_info
        assert info is not None
        assert (info.hits, info.misses) == (0, 2)
        assert info.submitted_units > 0
        assert any("2/2 finished" in message for message in messages)

    def test_repro_jobs_service_env(self, tmp_path, monkeypatch, capsys):
        with service_stack(tmp_path) as stack:
            monkeypatch.setenv("REPRO_JOBS", "service")
            monkeypatch.setenv("REPRO_BROKER", stack.url)
            result = Study("fig2", trials=1).run()
        assert result.errors == {}
        assert "[service]" in capsys.readouterr().err

    def test_broker_side_cache_makes_resubmission_free(self, tmp_path):
        from repro.study.cache import StudyCache

        cache = StudyCache(tmp_path / "cache")
        study = Study("fig2", trials=1).grid(seed=[2014, 2015])
        with service_stack(tmp_path, cache=cache) as stack:
            engine = ServiceEngine(stack.url, poll=0.05, progress=lambda _: None)
            first = study.run(engine=engine)
            second = study.run(engine=engine)
        from repro.study.cache import CacheInfo

        assert first.cache_info.misses == 2
        assert second.cache_info == CacheInfo(hits=2, misses=0, submitted_units=0)
        assert second.rendered == first.rendered
        assert second.column_mismatches(first) == []


class TestWorkerFailure:
    def test_lost_worker_lease_requeues_and_sweep_completes(self, tmp_path):
        with service_stack(tmp_path, lease_timeout=0.5, start_workers=False) as stack:
            client = BrokerClient(stack.url)
            payload = {"experiment": "fig2", "params": {"trials": 1}, "axes": {}}
            job = client.submit(payload)["job_id"]
            # A "worker" that takes the lease and dies: no heartbeat, no
            # completion — exactly what kill -9 leaves behind.
            doomed = client.lease("doomed")
            assert doomed is not None
            stack.start_worker("survivor")
            status = wait_done(client, job)
        assert status["state"] == "done"
        assert status["cells"][0]["attempts"] == 2
        assert status["cells"][0]["worker"] == "survivor"
        assert any("requeued" in line and "lease expired" in line for line in stack.log)

    def test_poisoned_cell_quarantines_as_per_cell_error(self, tmp_path):
        with (
            injectable_fig2() as experiment_id,
            service_stack(tmp_path, max_attempts=2) as stack,
        ):
            engine = ServiceEngine(stack.url, poll=0.05, progress=lambda _: None)
            study = Study(experiment_id, trials=1).grid(boom=[False, True])
            result = study.run(engine=engine)
            # The healthy cell survives the poisoned one.
            assert result.cells[0].error is None
            assert result.cells[0].result is not None
            assert "boom: injected cell failure" in result.cells[1].error
            assert set(result.errors) == {1}
            assert "cell 1 FAILED" in result.rendered
            # Both attempts were charged before quarantine.
            assert sum("quarantined" in line for line in stack.log) == 1
            with pytest.raises(ConfigError, match="failed cells"):
                result.save(tmp_path / "poisoned")

    def test_heartbeat_keeps_a_slow_cell_leased(self, tmp_path):
        with (
            injectable_fig2() as experiment_id,
            service_stack(tmp_path, lease_timeout=0.4) as stack,
        ):
            engine = ServiceEngine(stack.url, poll=0.05, progress=lambda _: None)
            result = Study(experiment_id, trials=1, delay=1.5).run(engine=engine)
        assert result.errors == {}
        # One lease, no expiry: the heartbeat outran the 0.4 s timeout
        # across a 1.5 s cell.
        assert not any("requeued" in line for line in stack.log)
        assert sum("leased to" in line for line in stack.log) == 1

    def test_workers_ride_out_a_broker_restart(self, tmp_path):
        log: list[str] = []
        db = tmp_path / "queue.sqlite3"
        first = Broker(db, lease_timeout=30.0, log=log.append)
        server = create_server(first)
        port = server.server_address[1]
        url = f"http://127.0.0.1:{port}"
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        job = BrokerClient(url, timeout=5.0).submit(
            {
                "experiment": "fig2",
                "params": {"trials": 1},
                "axes": {"seed": [2014, 2015]},
            }
        )["job_id"]
        # Take the HTTP front end down before any worker exists; the
        # sqlite queue keeps the submitted job.
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        first.close()

        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker,
            args=(url,),
            kwargs={
                "jobs": "serial",
                "poll": 0.05,
                "stop": stop,
                "worker_id": "steady",
                "log": log.append,
            },
            daemon=True,
        )
        worker.start()
        second = None
        try:
            deadline = time.monotonic() + 10.0
            while not any("unreachable" in line for line in log):
                assert time.monotonic() < deadline, "worker never noticed"
                time.sleep(0.02)
            # Restart on the same database and the same port: the worker
            # that kept polling picks the queue back up and drains it.
            second = Broker(db, lease_timeout=30.0, log=log.append)
            server = create_server(second, port=port)
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            thread.start()
            status = wait_done(BrokerClient(url, timeout=5.0), job)
        finally:
            stop.set()
            worker.join(timeout=30)
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            if second is not None:
                second.close()
        assert status["state"] == "done"
        assert any("reachable again" in line for line in log)


class TestHttpSurface:
    def test_health_and_errors(self, tmp_path):
        with service_stack(tmp_path, start_workers=False) as stack:
            client = BrokerClient(stack.url)
            assert client.health() is True
            with pytest.raises(ServiceError, match="unknown job"):
                client.status("nope")
            with pytest.raises(ServiceError, match="unknown path"):
                client._request("GET", "/api/v1/bogus")
            with pytest.raises(ConfigError, match="broker URL"):
                resolve_broker(None)

    def test_client_surfaces_unreachable_broker(self):
        client = BrokerClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach broker"):
            client.health()

    def test_run_server_binds_and_shuts_down(self, tmp_path):
        broker = Broker(tmp_path / "queue.sqlite3")
        ready = threading.Event()
        box: list = []
        thread = threading.Thread(
            target=run_server,
            args=(broker, "127.0.0.1", 0),
            kwargs={"ready": ready, "server_box": box},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        url = f"http://127.0.0.1:{box[0].server_address[1]}"
        assert BrokerClient(url).health() is True
        box[0].shutdown()
        thread.join(timeout=10)
        broker.close()


class TestCli:
    def test_experiment_backend_service_end_to_end(self, tmp_path, capsys):
        with service_stack(tmp_path, workers=2) as stack:
            code = main(
                [
                    "experiment",
                    "fig2",
                    "--trials",
                    "1",
                    "--grid",
                    "seed=2014;2015",
                    "--backend",
                    "service",
                    "--broker",
                    stack.url,
                    "--save",
                    str(tmp_path / "cli-run"),
                ]
            )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert (tmp_path / "cli-run.json").exists()
        assert (tmp_path / "cli-run.npz").exists()
        assert "cache: 0 hit(s)" in captured.err

    def test_worker_command_drains_a_queue(self, tmp_path, capsys):
        with service_stack(tmp_path, start_workers=False) as stack:
            payload = {"experiment": "fig2", "params": {"trials": 1}, "axes": {}}
            job = BrokerClient(stack.url).submit(payload)["job_id"]
            code = main(["worker", stack.url, "--jobs", "serial", "--once", "--id", "cliw"])
            assert code == 0
            assert stack.broker.status(job)["state"] == "done"
        assert "processed 1 cell(s)" in capsys.readouterr().err

    def test_usage_errors_exit_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BROKER", raising=False)
        assert main(["experiment", "fig2", "--backend", "service"]) == 2
        assert "broker URL" in capsys.readouterr().err
        assert main(["experiment", "fig2", "--broker", "http://x"]) == 2
        assert "--backend service" in capsys.readouterr().err
        assert (
            main(
                [
                    "experiment",
                    "fig2",
                    "--backend",
                    "service",
                    "--broker",
                    "http://x",
                    "--jobs",
                    "2",
                ]
            )
            == 2
        )
        assert "--jobs applies to the local backend" in capsys.readouterr().err
        assert main(["worker"]) == 2
        assert main(["serve", "--max-attempts", "0"]) == 2
