"""Web proxy + video server applications and JSON API."""

import numpy as np
import pytest

from repro.cdn.catalog import Catalog
from repro.cdn.jsonapi import build_video_info, parse_video_info
from repro.cdn.selection import ServerSelection
from repro.cdn.signature import SignatureCipher, decipher
from repro.cdn.tokens import TokenMint
from repro.cdn.videos import VideoAsset, VideoMeta
from repro.cdn.videoserver import VideoServerApp
from repro.cdn.webproxy import WebProxyApp, parse_decoder_page, stream_signature
from repro.errors import CDNError, ConfigError, ServerUnavailableError
from repro.http.messages import Request
from repro.http.ranges import ByteRange, format_range_header
from repro.net.topology import Host


@pytest.fixture
def world(rng):
    catalog = Catalog()
    catalog.add(
        VideoMeta(
            video_id="plainVIDEO1",
            title="open",
            author="a",
            duration_s=60.0,
            itags=(18, 22),
        )
    )
    catalog.add(
        VideoMeta(
            video_id="cryptVIDEO1",
            title="protected",
            author="a",
            duration_s=60.0,
            itags=(22,),
            copyrighted=True,
        )
    )
    mint = TokenMint(secret=b"secret")
    cipher = SignatureCipher.random(rng)
    clock_value = [1000.0]
    proxy = WebProxyApp(
        catalog,
        mint,
        select_hosts=lambda network: [f"v1.{network}.example", f"v2.{network}.example"],
        clock=lambda: clock_value[0],
        cipher=cipher,
        signature_secret=b"stream-secret",
    )
    video = VideoServerApp(
        catalog,
        mint,
        clock=lambda: clock_value[0],
        pool="wifi-net",
        signature_secret=b"stream-secret",
    )
    return dict(
        catalog=catalog, mint=mint, cipher=cipher, proxy=proxy, video=video, clock=clock_value
    )


def video_info(world, video_id="plainVIDEO1", network="wifi-net"):
    response = world["proxy"](Request.get(f"/videoinfo?v={video_id}", host="p"), network)
    assert response.status == 200, response.body
    return parse_video_info(response.parsed_json())


def playback_request(world, info, itag=22, byte_range=ByteRange(0, 1024), sig=None):
    stream = info.stream(itag)
    signature = sig if sig is not None else stream.signature
    target = info.playback_target(itag, signature)
    request = Request.get(target, host="v1")
    if byte_range is not None:
        request.headers.set("Range", format_range_header(byte_range))
    return request


class TestWebProxy:
    def test_videoinfo_carries_token_and_hosts(self, world):
        info = video_info(world)
        assert info.pool == "wifi-net"
        assert info.stream(22).hosts == ("v1.wifi-net.example", "v2.wifi-net.example")
        assert info.token
        assert info.token_expires_in_s == pytest.approx(3600.0)

    def test_sizes_match_assets(self, world):
        info = video_info(world)
        expected = VideoAsset(world["catalog"].get("plainVIDEO1"), 22).size_bytes
        assert info.stream(22).size_bytes == expected

    def test_per_network_pools_differ(self, world):
        wifi = video_info(world, network="wifi-net")
        lte = video_info(world, network="lte-net")
        assert wifi.stream(22).hosts != lte.stream(22).hosts

    def test_unknown_video_404(self, world):
        response = world["proxy"](Request.get("/videoinfo?v=missingVID1", host="p"), "wifi-net")
        assert response.status == 404

    def test_missing_parameter_400(self, world):
        response = world["proxy"](Request.get("/videoinfo", host="p"), "wifi-net")
        assert response.status == 400

    def test_no_pool_503(self, rng, world):
        proxy = WebProxyApp(
            world["catalog"],
            world["mint"],
            select_hosts=lambda network: (_ for _ in ()).throw(
                ServerUnavailableError("dark")
            ),
            clock=lambda: 0.0,
            cipher=world["cipher"],
            signature_secret=b"stream-secret",
        )
        response = proxy(Request.get("/videoinfo?v=plainVIDEO1", host="p"), "wifi-net")
        assert response.status == 503

    def test_api_key_enforcement(self, world, rng):
        proxy = WebProxyApp(
            world["catalog"],
            world["mint"],
            select_hosts=lambda network: ["v1"],
            clock=lambda: 0.0,
            cipher=world["cipher"],
            signature_secret=b"s",
            api_key="devkey123",
        )
        denied = proxy(Request.get("/videoinfo?v=plainVIDEO1", host="p"), "n")
        assert denied.status == 401
        granted = proxy(
            Request.get("/videoinfo?v=plainVIDEO1", host="p", Authorization="Bearer devkey123"),
            "n",
        )
        assert granted.status == 200

    def test_copyrighted_video_gets_enciphered_signature(self, world):
        info = video_info(world, video_id="cryptVIDEO1")
        stream = info.stream(22)
        assert stream.needs_decipher
        assert not stream.signature
        plain = stream_signature("cryptVIDEO1", 22, b"stream-secret")
        assert stream.enciphered_signature != plain

    def test_decoder_page_roundtrip(self, world):
        response = world["proxy"](Request.get("/player.js", host="p"), "wifi-net")
        assert response.status == 200
        program = parse_decoder_page(response.body)
        info = video_info(world, video_id="cryptVIDEO1")
        recovered = decipher(info.stream(22).enciphered_signature, program)
        assert recovered == stream_signature("cryptVIDEO1", 22, b"stream-secret")

    def test_decoder_page_is_page_sized(self, world):
        response = world["proxy"](Request.get("/player.js", host="p"), "wifi-net")
        assert response.body_size >= 64 * 1024

    def test_unknown_path_404(self, world):
        assert world["proxy"](Request.get("/elsewhere", host="p"), "n").status == 404

    def test_post_rejected(self, world):
        assert world["proxy"](Request("POST", "/videoinfo"), "n").status == 405


class TestJsonApi:
    def test_parse_rejects_wrong_schema(self, world):
        payload = {"schema": 999}
        with pytest.raises(CDNError):
            parse_video_info(payload)

    def test_parse_rejects_non_object(self):
        with pytest.raises(CDNError):
            parse_video_info([1, 2, 3])

    def test_parse_rejects_streams_without_hosts(self, world):
        meta = world["catalog"].get("plainVIDEO1")
        payload = build_video_info(
            meta,
            sizes={18: 1, 22: 1},
            client_address="c",
            token="t",
            ttl_s=10.0,
            pool="p",
            hosts=[],
            signatures={18: "s", 22: "s"},
            enciphered=False,
        )
        with pytest.raises(CDNError, match="hosts"):
            parse_video_info(payload)

    def test_playback_target_contains_credentials(self, world):
        info = video_info(world)
        target = info.playback_target(22, "SIGVALUE")
        assert "token=" in target and "sig=SIGVALUE" in target and "v=plainVIDEO1" in target


class TestVideoServer:
    def test_range_request_served(self, world):
        info = video_info(world)
        response = world["video"](playback_request(world, info), "wifi-net")
        assert response.status == 206
        assert response.body_size == 1024
        assert "bytes 0-1023/" in response.headers["Content-Range"]

    def test_whole_file_get(self, world):
        info = video_info(world)
        request = playback_request(world, info, byte_range=None)
        request.headers.remove("Range")
        response = world["video"](request, "wifi-net")
        assert response.status == 200
        assert response.body_size == info.stream(22).size_bytes

    def test_missing_token_401(self, world):
        request = Request.get("/videoplayback?v=plainVIDEO1&itag=22&sig=x", host="v")
        assert world["video"](request, "wifi-net").status == 401

    def test_expired_token_403(self, world):
        info = video_info(world)
        world["clock"][0] += 7200.0  # two hours later
        response = world["video"](playback_request(world, info), "wifi-net")
        assert response.status == 403

    def test_wrong_pool_token_403(self, world):
        info = video_info(world, network="lte-net")  # token bound to lte pool
        response = world["video"](playback_request(world, info), "lte-net")
        assert response.status == 403

    def test_bad_signature_403(self, world):
        info = video_info(world)
        response = world["video"](
            playback_request(world, info, sig="forged"), "wifi-net"
        )
        assert response.status == 403

    def test_unsatisfiable_range_416(self, world):
        info = video_info(world)
        size = info.stream(22).size_bytes
        response = world["video"](
            playback_request(world, info, byte_range=ByteRange(size + 10, size + 20)),
            "wifi-net",
        )
        assert response.status == 416

    def test_range_clamped_to_file(self, world):
        info = video_info(world)
        size = info.stream(22).size_bytes
        response = world["video"](
            playback_request(world, info, byte_range=ByteRange(size - 100, size + 100)),
            "wifi-net",
        )
        assert response.status == 206
        assert response.body_size == 100

    def test_draining_503(self, world):
        info = video_info(world)
        world["video"].draining = True
        response = world["video"](playback_request(world, info), "wifi-net")
        assert response.status == 503

    def test_unknown_video_404(self, world):
        request = Request.get("/videoplayback?v=missingVID1&itag=22&token=t&sig=s", host="v")
        assert world["video"](request, "wifi-net").status == 404

    def test_malformed_itag_400(self, world):
        request = Request.get("/videoplayback?v=plainVIDEO1&itag=HD&token=t&sig=s", host="v")
        assert world["video"](request, "wifi-net").status == 400

    def test_accounting(self, world):
        info = video_info(world)
        world["video"](playback_request(world, info), "wifi-net")
        world["video"](playback_request(world, info, byte_range=ByteRange(1024, 3072)), "wifi-net")
        assert world["video"].range_requests == 2
        assert world["video"].bytes_requested == 1024 + 2048


class TestServerSelection:
    def make_hosts(self, n, network="wifi-net"):
        return [Host(f"v{i}.example", network_id=network) for i in range(n)]

    def test_static_order(self):
        selection = ServerSelection("static")
        hosts = self.make_hosts(3)
        selection.add_pool("wifi-net", hosts)
        assert selection.select("wifi-net") == [h.address for h in hosts]

    def test_down_hosts_skipped(self):
        selection = ServerSelection("static")
        hosts = self.make_hosts(3)
        selection.add_pool("wifi-net", hosts)
        hosts[0].fail()
        assert selection.select("wifi-net") == [hosts[1].address, hosts[2].address]

    def test_all_down_raises(self):
        selection = ServerSelection("static")
        hosts = self.make_hosts(2)
        selection.add_pool("wifi-net", hosts)
        for host in hosts:
            host.fail()
        with pytest.raises(ServerUnavailableError):
            selection.select("wifi-net")

    def test_unknown_network_raises(self):
        with pytest.raises(ServerUnavailableError):
            ServerSelection().select("moon-net")

    def test_rotate_cycles_primary(self):
        selection = ServerSelection("rotate")
        hosts = self.make_hosts(3)
        selection.add_pool("wifi-net", hosts)
        primaries = [selection.select("wifi-net")[0] for _ in range(4)]
        assert primaries == ["v0.example", "v1.example", "v2.example", "v0.example"]

    def test_least_loaded_prefers_idle(self):
        selection = ServerSelection("least_loaded")
        hosts = self.make_hosts(2)
        selection.add_pool("wifi-net", hosts)
        hosts[0].bytes_served = 10_000_000
        assert selection.select("wifi-net")[0] == hosts[1].address

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ServerSelection("coin-flip")

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigError):
            ServerSelection().add_pool("wifi-net", [])
