"""Examples must stay runnable: each is executed as a subprocess."""

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", "7")
        assert "start-up delay" in output
        assert "traffic over WiFi" in output

    def test_youtube_startup_small(self):
        output = run_example("youtube_startup.py", "3")
        assert "MSPlayer" in output
        assert "60 s pre-buffer" in output
        assert "pre-buffer 60s" in output

    def test_study_sweep(self):
        output = run_example("study_sweep.py", "2")
        assert "2 grid cells" in output
        assert "=== fig2 [seed=2015] ===" in output
        assert "bit-identical" in output

    def test_mobility_robustness(self):
        output = run_example("mobility_robustness.py", "2")
        assert "WiFi outage" in output
        assert "Single-path WiFi baseline" in output

    def test_scheduler_playground(self):
        output = run_example("scheduler_playground.py")
        assert "harmonic" in output
        assert "estimates after the trace" in output

    def test_adaptive_streaming(self):
        output = run_example("adaptive_streaming.py", "1")
        assert "fixed 720p" in output
        assert "legend" in output

    def test_live_loopback(self):
        output = run_example("live_loopback.py", timeout=120.0)
        assert "loopback CDN up" in output
        assert "start-up delay" in output

    def test_city_scenarios(self):
        output = run_example("city_scenarios.py", "4")
        assert "EXP-X8" in output
        assert "EXP-X9" in output
        assert "p95 start-up" in output
        assert "SLO panel keys:" in output
