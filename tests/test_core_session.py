"""PlayerSession: scripted event sequences against the sans-IO orchestrator."""

import pytest

from repro.core.config import PlayerConfig
from repro.core.session import (
    FetchChunk,
    PathDead,
    PlayerSession,
    SessionDone,
    StartBootstrap,
    StartPlayback,
    StreamDetails,
)
from repro.errors import PlayerError
from repro.units import KB

BITRATE = 100_000.0  # bytes/s, keeps the arithmetic readable
DURATION = 100.0
TOTAL = int(BITRATE * DURATION)


def details(servers=("v0", "v1"), json_at=None):
    return StreamDetails(
        total_bytes=TOTAL,
        bitrate_bytes_per_s=BITRATE,
        duration_s=DURATION,
        video_servers=tuple(servers),
        json_completed_at=json_at,
    )


def make_session(prebuffer=10.0, low=None, refill=4.0, scheduler="harmonic", paths=2):
    if low is None:
        low = min(2.0, prebuffer / 4.0)
    config = PlayerConfig(
        prebuffer_s=prebuffer,
        low_watermark_s=low,
        rebuffer_fetch_s=refill,
        scheduler=scheduler,
        base_chunk_bytes=64 * KB,
    )
    specs = [("wlan0", "wifi-net"), ("wwan0", "lte-net")][:paths]
    return PlayerSession(config, specs)


def fetches(commands):
    return [c for c in commands if isinstance(c, FetchChunk)]


class TestStartAndBootstrap:
    def test_start_bootstraps_all_paths(self):
        session = make_session()
        result = session.start(0.0)
        assert [c.path_id for c in result.commands if isinstance(c, StartBootstrap)] == [0, 1]

    def test_double_start_rejected(self):
        session = make_session()
        session.start(0.0)
        with pytest.raises(PlayerError):
            session.start(1.0)

    def test_first_ready_path_fetches_immediately(self):
        # The §3.2 head start: no waiting for the second path.
        session = make_session()
        session.start(0.0)
        result = session.on_path_ready(0, details(), 1.0)
        assert len(fetches(result.commands)) == 1
        assert fetches(result.commands)[0].path_id == 0
        assert fetches(result.commands)[0].server == "v0"

    def test_second_path_joins_rotation(self):
        session = make_session()
        session.start(0.0)
        session.on_path_ready(0, details(), 1.0)
        result = session.on_path_ready(1, details(servers=("w0",)), 2.0)
        assert fetches(result.commands)[0].path_id == 1

    def test_mismatched_sizes_rejected(self):
        session = make_session()
        session.start(0.0)
        session.on_path_ready(0, details(), 1.0)
        bad = StreamDetails(TOTAL + 1, BITRATE, DURATION, ("w0",))
        with pytest.raises(PlayerError):
            session.on_path_ready(1, bad, 2.0)

    def test_first_chunk_starts_at_byte_zero(self):
        session = make_session()
        session.start(0.0)
        result = session.on_path_ready(0, details(), 1.0)
        assert fetches(result.commands)[0].byte_range.start == 0


class TestChunkFlow:
    def run_bootstrap(self, session):
        session.start(0.0)
        first = session.on_path_ready(0, details(), 1.0)
        second = session.on_path_ready(1, details(servers=("w0",)), 1.5)
        return fetches(first.commands) + fetches(second.commands)

    def complete(self, session, fetch, now, duration=0.5):
        return session.on_chunk_complete(
            fetch.path_id, fetch.byte_range.length, duration, now
        )

    def test_completion_chains_next_fetch(self):
        session = make_session()
        pending = self.run_bootstrap(session)
        result = self.complete(session, pending[0], now=2.0)
        next_fetches = fetches(result.commands)
        assert len(next_fetches) == 1
        assert next_fetches[0].path_id == pending[0].path_id
        # Contiguous extension: starts where assignment frontier left off.
        assert next_fetches[0].byte_range.start >= pending[0].byte_range.stop

    def test_playback_starts_at_prebuffer_target(self):
        session = make_session(prebuffer=1.0, paths=1)  # 1 s = 100 kB
        session.start(0.0)
        pending = fetches(session.on_path_ready(0, details(), 1.0).commands)
        commands = []
        now = 2.0
        while not session.playback_started:
            result = self.complete(session, pending[0], now=now)
            commands = result.commands
            pending = fetches(result.commands) or pending
            now += 0.5
        assert any(isinstance(c, StartPlayback) for c in commands)
        assert session.metrics.playback_started_at is not None

    def test_fetch_pauses_when_buffer_full(self):
        session = make_session(prebuffer=1.0)
        pending = self.run_bootstrap(session)
        now = 2.0
        # Feed chunks until fetching turns OFF.
        active = {f.path_id: f for f in pending}
        while True:
            fetch = active.pop(0, None) or active.pop(1, None)
            if fetch is None:
                break
            result = self.complete(session, fetch, now=now)
            for f in fetches(result.commands):
                active[f.path_id] = f
            now += 0.3
        assert session.buffer is not None and not session.buffer.fetch_on

    def test_tick_reopens_fetching(self):
        session = make_session(prebuffer=1.0, low=0.5, refill=1.0, paths=1)
        session.start(0.0)
        pending = fetches(session.on_path_ready(0, details(), 1.0).commands)
        now = 2.0
        while pending:
            result = self.complete(session, pending[0], now=now)
            pending = fetches(result.commands)
            now += 0.3
        assert not session.buffer.fetch_on
        # Drain the buffer below the watermark via playback ticks.
        result = session.on_tick(dt=2.0, now=now + 2.0)
        assert fetches(result.commands), "ON cycle should hand out chunks"

    def test_out_of_order_completion_tracked(self):
        session = make_session()
        pending = self.run_bootstrap(session)
        # Complete the second path's (later) range first.
        later = max(pending, key=lambda f: f.byte_range.start)
        self.complete(session, later, now=2.0)
        assert session.ledger.out_of_order_count == 1

    def test_interpolated_crossing_backdates_playback_start(self):
        # One chunk covering 2 s of video, delivered over [2.0, 4.0];
        # the 1 s pre-buffer target is crossed halfway through the
        # transfer, so playback start is credited at t = 3.0.
        config = PlayerConfig(
            prebuffer_s=1.0,
            low_watermark_s=0.25,
            rebuffer_fetch_s=1.0,
            base_chunk_bytes=2 * int(BITRATE),
        )
        session = PlayerSession(config, [("wlan0", "wifi-net")])
        session.start(0.0)
        result = session.on_path_ready(0, details(), 1.0)
        fetch = fetches(result.commands)[0]
        assert fetch.byte_range.length == 2 * int(BITRATE)
        session.on_chunk_complete(
            0, fetch.byte_range.length, 2.0, now=4.0, first_byte_at=2.0
        )
        assert session.metrics.playback_started_at == pytest.approx(3.0, abs=0.05)


class TestFailover:
    def boot(self, session, servers=("v0", "v1")):
        session.start(0.0)
        result = session.on_path_ready(0, details(servers=servers), 1.0)
        return fetches(result.commands)[0]

    def test_chunk_failure_triggers_failover_bootstrap(self):
        session = make_session(paths=1)
        self.boot(session)
        result = session.on_chunk_failed(0, 0, now=2.0, reason="reset")
        bootstraps = [c for c in result.commands if isinstance(c, StartBootstrap)]
        assert bootstraps and bootstraps[0].server == "v1"
        assert session.metrics.failovers == 1

    def test_failed_bytes_requeued_for_survivor(self):
        session = make_session()
        session.start(0.0)
        first = fetches(session.on_path_ready(0, details(), 1.0).commands)[0]
        path1_fetch = fetches(
            session.on_path_ready(1, details(servers=("w0",)), 1.5).commands
        )[0]
        # Path 0 dies mid-chunk while path 1 is still transferring.
        session.on_chunk_failed(0, 0, now=2.0, reason="reset", interface_down=True)
        # When path 1 completes, its next assignment must be the
        # requeued range (resume at the break point, §2).
        result = session.on_chunk_complete(
            1, path1_fetch.byte_range.length, 0.5, now=2.5
        )
        next_fetch = fetches(result.commands)[0]
        assert next_fetch.path_id == 1
        assert next_fetch.byte_range.start == first.byte_range.start

    def test_interface_down_kills_path(self):
        session = make_session()
        self.boot(session)
        session.on_path_ready(1, details(servers=("w0",)), 1.5)
        result = session.on_chunk_failed(0, 0, now=2.0, interface_down=True)
        dead = [c for c in result.commands if isinstance(c, PathDead)]
        assert dead and dead[0].reason == "interface-down"
        assert not session.paths[0].alive

    def test_sources_exhausted_kills_path(self):
        session = make_session(paths=1)
        self.boot(session, servers=("only",))
        session.on_chunk_failed(0, 0, now=2.0)  # strike 1: retry same
        result = session.on_chunk_failed(0, 0, now=3.0)  # strike 2: out
        kinds = [type(c).__name__ for c in result.commands]
        assert "PathDead" in kinds
        assert "SessionDone" in kinds  # single path: session over

    def test_interface_up_revives_path(self):
        session = make_session()
        self.boot(session)
        session.on_path_ready(1, details(servers=("w0",)), 1.5)
        session.on_chunk_failed(0, 0, now=2.0, interface_down=True)
        result = session.on_interface_up(0, now=10.0)
        assert any(isinstance(c, StartBootstrap) for c in result.commands)
        assert session.paths[0].phase.value == "bootstrapping"

    def test_interface_up_on_live_path_is_noop(self):
        session = make_session()
        self.boot(session)
        assert session.on_interface_up(0, now=5.0).commands == []


class TestCompletion:
    def test_full_download_and_playback_finish(self):
        session = make_session(prebuffer=1.0, paths=1)
        session.start(0.0)
        result = session.on_path_ready(0, details(), 1.0)
        now = 1.0
        pending = fetches(result.commands)
        while not session.ledger.complete:
            if pending:
                now += 0.2
                result = session.on_chunk_complete(
                    0, pending[0].byte_range.length, 0.2, now
                )
                pending = fetches(result.commands)
            else:
                # Buffer is full (fetch OFF): play it down until the
                # next ON cycle hands out work.
                now += 1.0
                result = session.on_tick(1.0, now)
                pending = fetches(result.commands)
        assert session.ledger.complete
        assert session.buffer.download_complete
        # Play the rest out.
        done = []
        while not session.done:
            now += 5.0
            result = session.on_tick(5.0, now)
            done.extend(c for c in result.commands if isinstance(c, SessionDone))
        assert done
        assert session.metrics.playback_finished_at is not None
