"""Property-based round trips for the columnar outcome pipeline.

Hypothesis generates adversarial ``SessionOutcome`` populations —
random trial counts (including none), trials with no completed cycles,
zero-byte phases (empty per-path dicts), sparse/high path ids, mixed
stop reasons, never-started playback — and asserts that:

* ``OutcomeBatch.from_outcomes`` agrees exactly with per-trial Python
  loops over the outcome objects, accessor by accessor;
* the shm side channel is lossless: ``rebuild_outcome(encode_side(o))``
  (plus the dense arena row) reproduces ``o`` exactly, through a real
  pickle round trip;
* ``OutcomeBatch.from_dense_and_sides`` — the zero-deserialization
  assembly — is bit-identical to ``from_outcomes``, dtypes included.

Examples are derandomized: the suite is a determinism wall, so the
property tests themselves must not flake.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
from hypothesis import given, settings, strategies as st

from conftest import assert_batches_identical
from repro.core.metrics import QoEMetrics, RebufferCycle, StallEvent
from repro.sim.campaign import OutcomeBatch
from repro.sim.driver import SessionOutcome
from repro.sim.shm import OutcomeArena, encode_side, rebuild_outcome

# Simulated timestamps: finite, non-negative.  NaN is excluded because
# the round-trip assertions use ``==`` on rebuilt objects.
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
maybe_time = st.none() | times
path_ids = st.integers(min_value=0, max_value=5)
# Byte counts stay below 2**40: the columnar traffic fractions divide
# int64 matrices as float64, while QoEMetrics divides Python ints with
# correct rounding — identical only while counts are exactly
# representable as doubles (real campaigns move ~1e8 bytes).
byte_counts = st.integers(min_value=0, max_value=2**40)
byte_dicts = st.dictionaries(path_ids, byte_counts, max_size=4)
stop_reasons = st.sampled_from(
    ["prebuffer-complete", "cycles-complete", "playback-finished", "failed: no paths", ""]
)


@st.composite
def outcomes(draw) -> SessionOutcome:
    stalls = [
        StallEvent(started_at=draw(times), ended_at=draw(maybe_time))
        for _ in range(draw(st.integers(0, 3)))
    ]
    cycles = [
        RebufferCycle(
            started_at=draw(times),
            ended_at=draw(maybe_time),  # None: cycle still open — excluded from CSR
            level_at_start_s=draw(times),
        )
        for _ in range(draw(st.integers(0, 4)))
    ]
    metrics = QoEMetrics(
        session_started_at=draw(times),
        playback_started_at=draw(maybe_time),  # None: playback never started
        prebuffer_completed_at=draw(maybe_time),
        playback_finished_at=draw(maybe_time),
        download_completed_at=draw(maybe_time),
        prebuffer_bytes_by_path=draw(byte_dicts),
        rebuffer_bytes_by_path=draw(byte_dicts),
        requests_by_path=draw(st.dictionaries(path_ids, st.integers(0, 1000), max_size=4)),
        active_time_by_path=draw(st.dictionaries(path_ids, times, max_size=4)),
        path_bootstrap=draw(
            st.dictionaries(path_ids, st.tuples(times, times), max_size=4)
        ),
        stalls=stalls,
        rebuffer_cycles=cycles,
        failovers=draw(st.integers(0, 5)),
        peak_out_of_order=draw(st.integers(0, 64)),
    )
    return SessionOutcome(
        metrics=metrics,
        finished_at=draw(times),
        stop_reason=draw(stop_reasons),
        peak_out_of_order=metrics.peak_out_of_order,
        path_json_delay=draw(st.dictionaries(path_ids, times, max_size=2)),
        path_first_video_delay=draw(st.dictionaries(path_ids, times, max_size=2)),
        server_bytes=draw(
            st.dictionaries(
                st.sampled_from(["v1.cdn", "v2.cdn", "v3.cdn"]), byte_counts, max_size=3
            )
        ),
        requests_by_path=draw(st.dictionaries(path_ids, st.integers(0, 1000), max_size=4)),
    )


outcome_lists = st.lists(outcomes(), min_size=0, max_size=12)

#: One shared profile: examples must be reproducible run over run (and
#: cheap enough that tier-1 stays fast — 25 examples × 8 properties).
DETERMINISTIC = settings(max_examples=25, deadline=None, database=None, derandomize=True)


class TestFromOutcomesAgainstLoops:
    """The columnar view vs per-trial Python loops, accessor by accessor."""

    @given(outcome_lists)
    @DETERMINISTIC
    def test_scalar_columns_match_loops(self, population):
        batch = OutcomeBatch.from_outcomes(population)
        assert len(batch) == len(population)
        expected_startup = [
            math.nan if o.startup_delay is None else o.startup_delay
            for o in population
        ]
        assert [
            math.isnan(v) if math.isnan(e) else v == e
            for v, e in zip(batch.startup.tolist(), expected_startup, strict=True)
        ] == [True] * len(population)
        assert batch.finished_at.tolist() == [o.finished_at for o in population]
        assert batch.total_stall.tolist() == [
            o.metrics.total_stall_time for o in population
        ]
        assert batch.failovers.tolist() == [o.metrics.failovers for o in population]
        assert batch.stop_reasons.tolist() == [o.stop_reason for o in population]

    @given(outcome_lists)
    @DETERMINISTIC
    def test_startup_delays_filter_matches_loop(self, population):
        batch = OutcomeBatch.from_outcomes(population)
        assert batch.startup_delays().tolist() == [
            o.startup_delay for o in population if o.startup_delay is not None
        ]

    @given(outcome_lists)
    @DETERMINISTIC
    def test_cycle_csr_matches_loop(self, population):
        batch = OutcomeBatch.from_outcomes(population)
        flat: list[float] = []
        for i, outcome in enumerate(population):
            durations = outcome.metrics.completed_cycle_durations()
            start, end = batch.cycle_offsets[i], batch.cycle_offsets[i + 1]
            assert batch.cycle_durations[start:end].tolist() == durations
            flat.extend(durations)
        assert batch.cycle_durations.tolist() == flat
        assert batch.cycle_offsets[0] == 0
        assert batch.cycle_offsets[-1] == len(flat)

    @given(outcome_lists, st.integers(-1, 6), st.sampled_from(["prebuffer", "rebuffer", "all"]))
    @DETERMINISTIC
    def test_traffic_fractions_match_metrics(self, population, path_id, phase):
        batch = OutcomeBatch.from_outcomes(population)
        assert batch.traffic_fractions(path_id, phase).tolist() == [
            o.metrics.traffic_fraction(path_id, phase) for o in population
        ]


class TestSideChannelRoundTrip:
    """encode_side → (pickle) → rebuild_outcome is lossless."""

    @given(outcomes())
    @DETERMINISTIC
    def test_rebuild_equals_original(self, outcome):
        side = encode_side(outcome)
        rebuilt = rebuild_outcome(
            side, outcome.finished_at, outcome.metrics.failovers
        )
        assert rebuilt == outcome

    @given(outcomes())
    @DETERMINISTIC
    def test_rebuild_survives_the_pipe(self, outcome):
        # The side record actually crosses a process boundary pickled;
        # round-trip through pickle like the pool pipe does.
        side = pickle.loads(pickle.dumps(encode_side(outcome)))
        rebuilt = rebuild_outcome(
            side, outcome.finished_at, outcome.metrics.failovers
        )
        assert rebuilt == outcome
        # Rebuilt objects own their dicts — no aliasing back into the record.
        rebuilt.server_bytes["poison"] = 1
        assert "poison" not in side.server_bytes


class TestColumnarAssemblyIdentity:
    """from_dense_and_sides == from_outcomes, bit for bit."""

    @given(outcome_lists)
    @DETERMINISTIC
    def test_arena_plus_sides_assemble_identically(self, population):
        reference = OutcomeBatch.from_outcomes(population)
        arena = OutcomeArena.create(len(population))
        try:
            for i, outcome in enumerate(population):
                arena.write(i, outcome)
            dense = arena.read_columns()
        finally:
            arena.destroy()
        sides = [pickle.loads(pickle.dumps(encode_side(o))) for o in population]
        assembled = OutcomeBatch.from_dense_and_sides(dense, sides)
        assert_batches_identical(assembled, reference)

    @given(outcome_lists)
    @DETERMINISTIC
    def test_arena_columns_match_loops(self, population):
        arena = OutcomeArena.create(len(population))
        try:
            for i, outcome in enumerate(population):
                arena.write(i, outcome)
            dense = arena.read_columns()
        finally:
            arena.destroy()
        assert np.array_equal(
            dense["startup"],
            np.asarray(
                [
                    np.nan if o.startup_delay is None else o.startup_delay
                    for o in population
                ],
                dtype=float,
            ),
            equal_nan=True,
        )
        assert dense["finished_at"].tolist() == [o.finished_at for o in population]
        assert dense["total_stall"].tolist() == [
            o.metrics.total_stall_time for o in population
        ]
        assert dense["failovers"].tolist() == [
            o.metrics.failovers for o in population
        ]
