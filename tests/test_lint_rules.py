"""Fixture corpus for the repro-lint rules.

Every rule gets at least one fixture-verified true positive (bad
snippet → finding) and true negative (good snippet → clean).  Snippets
are written under path shapes that trigger the rules' path
classification (``net/``, ``sim/``, ``core/buffer*``, …) so the tests
also pin the classification logic itself.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.base import ModuleContext
import ast


def lint_snippet(tmp_path: Path, rel: str, source: str, select=None):
    """Write ``source`` at ``tmp_path/rel`` and lint it; returns findings."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    report = run_lint([target], select=select, root=tmp_path)
    return report.findings


def rules_hit(findings) -> set[str]:
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ---------------------------------------------------------------------------


class TestDET001:
    def test_flags_random_import(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert "DET001" in rules_hit(findings)
        assert any("random" in f.message for f in findings)

    def test_flags_wall_clock_and_urandom(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "sim/mod.py",
            """
            import os
            import time

            def stamp():
                return time.time(), os.urandom(4)
            """,
        )
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 2

    def test_flags_unseeded_default_rng(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "ext/mod.py",
            """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
            """,
        )
        assert "DET001" in rules_hit(findings)

    def test_clean_outside_deterministic_paths(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "live/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert "DET001" not in rules_hit(findings)

    def test_clean_for_seeded_rng_and_env_clock(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            import numpy as np

            def draw(factory, env):
                generator = factory.generator("link.bandwidth")
                seeded = np.random.default_rng(42)
                return generator.random(), seeded.random(), env.now
            """,
        )
        assert "DET001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# DET002 — bare set iteration
# ---------------------------------------------------------------------------


class TestDET002:
    def test_flags_for_loop_over_set_literal(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "cdn/mod.py",
            """
            def demux(out):
                for key in {"b", "a"}:
                    out.append(key)
            """,
        )
        assert "DET002" in rules_hit(findings)

    def test_flags_loop_over_tracked_set_variable(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "sim/mod.py",
            """
            def schedule(items, out):
                pending = set(items)
                for item in pending:
                    out.append(item)
            """,
        )
        assert "DET002" in rules_hit(findings)

    def test_flags_list_of_set_union_and_set_pop(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            def merge(a, b):
                ordered = list(set(a) | set(b))
                leftovers = set(a)
                first = leftovers.pop()
                return ordered, first
            """,
        )
        det = [f for f in findings if f.rule == "DET002"]
        assert len(det) == 2

    def test_clean_when_sorted(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            def merge(a, b, out):
                for key in sorted(set(a) | set(b)):
                    out.append(key)
                names = sorted(item.name for item in set(a))
                return names, min(set(b)) if b else None
            """,
        )
        assert "DET002" not in rules_hit(findings)

    def test_clean_for_dict_iteration(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "core/mod.py",
            """
            def walk(table, out):
                for key, value in table.items():
                    out.append((key, value))
                for value in table.values():
                    out.append(value)
            """,
        )
        assert "DET002" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# DET003 — float equality on times/priorities
# ---------------------------------------------------------------------------


class TestDET003:
    def test_flags_equality_on_time_named_operands(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            def ready(entry, deadline):
                return entry.when == deadline
            """,
        )
        assert "DET003" in rules_hit(findings)

    def test_flags_float_literal_comparison(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "sim/mod.py",
            """
            def check(x):
                return x != 1.5
            """,
        )
        assert "DET003" in rules_hit(findings)

    def test_clean_for_ordering_and_exact_operands(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            def ok(entry, deadline, count, label):
                return (
                    entry.when <= deadline
                    and count == 3
                    and label == "steady"
                    and entry.reason == None
                )
            """,
        )
        assert "DET003" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# WRK001 — spec picklability
# ---------------------------------------------------------------------------


class TestWRK001:
    def test_flags_nested_spec_class(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            """
            def build():
                class LocalSpec:
                    label = "x"

                return LocalSpec()
            """,
        )
        assert "WRK001" in rules_hit(findings)

    def test_flags_lambda_in_spec_body_and_call(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass, field

            @dataclass
            class TrialSpec:
                hook: object = field(default_factory=lambda: None)

            def build(TrialSpec):
                return TrialSpec(driver=lambda scenario: None)
            """,
        )
        wrk = [f for f in findings if f.rule == "WRK001"]
        assert len(wrk) == 2

    def test_flags_closure_argument(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "mod.py",
            """
            def build(make_spec):
                def hook(scenario):
                    return None

                return make_spec.TrialSpec(scenario_hook=hook)
            """,
        )
        assert "WRK001" in rules_hit(findings)

    def test_clean_for_module_level_spec(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            def module_hook(scenario):
                return None

            @dataclass
            class GoodSpec:
                label: str = "x"

            def build():
                return GoodSpec(label="y"), module_hook
            """,
        )
        assert "WRK001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# KER001 — kernel API discipline
# ---------------------------------------------------------------------------


class TestKER001:
    def test_flags_scheduler_internal_access(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "cdn/mod.py",
            """
            def cheat(env, event):
                env._schedule_event(event)
                return env._scheduler.pop()
            """,
        )
        ker = [f for f in findings if f.rule == "KER001"]
        assert len(ker) == 2

    def test_flags_bare_yield_timeout(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "sim/mod.py",
            """
            def ticker(env):
                while True:
                    yield env.timeout(0.5)
            """,
        )
        assert "KER001" in rules_hit(findings)

    def test_clean_inside_kernel_modules(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/env.py",
            """
            def drive(self, event):
                self._scheduler.schedule(0.0, 1, event)
            """,
        )
        assert "KER001" not in rules_hit(findings)

    def test_clean_for_fast_lanes_and_composed_events(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "sim/mod.py",
            """
            def ticker(env, flow):
                while True:
                    yield env.pooled_timeout(0.5)
                    guard = env.timeout(2.0)
                    yield guard | flow.done_event
            """,
        )
        assert "KER001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SLT001 — hot-module __slots__
# ---------------------------------------------------------------------------


class TestSLT001:
    def test_flags_dictful_class_in_net(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            class FlowState:
                def __init__(self):
                    self.rate = 0.0
            """,
        )
        assert "SLT001" in rules_hit(findings)

    def test_flags_plain_dataclass_in_hot_core(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "core/buffer_extra.py",
            """
            from dataclasses import dataclass

            @dataclass
            class Window:
                start: float = 0.0
            """,
        )
        assert "SLT001" in rules_hit(findings)
        assert any("slots=True" in f.message for f in findings)

    def test_clean_for_slotted_exempt_and_cold_classes(self, tmp_path):
        source = """
            import enum
            from dataclasses import dataclass
from typing import Protocol


            class Slotted:
                __slots__ = ("rate",)


            @dataclass(slots=True)
            class Window:
                start: float = 0.0


            class Phase(enum.Enum):
                ON = "on"


            class KernelError(Exception):
                pass


            class Driver(Protocol):
                def run(self) -> None: ...
        """
        assert "SLT001" not in rules_hit(lint_snippet(tmp_path, "net/ok.py", source))
        dictful = """
            class Anything:
                def __init__(self):
                    self.x = 1
        """
        assert "SLT001" not in rules_hit(
            lint_snippet(tmp_path, "analysis/mod.py", dictful)
        )


# ---------------------------------------------------------------------------
# Cross-cutting engine behaviour
# ---------------------------------------------------------------------------


class TestEngine:
    def test_findings_are_sorted_and_carry_context(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            import random

            class Unslotted:
                pass
            """,
        )
        assert findings == sorted(findings)
        assert findings[0].context == "import random"
        assert findings[0].path.endswith("net/mod.py")
        assert findings[0].line == 2

    def test_select_restricts_rules(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "net/mod.py",
            """
            import random

            class Unslotted:
                pass
            """,
            select=["SLT001"],
        )
        assert rules_hit(findings) == {"SLT001"}

    def test_unknown_select_raises(self, tmp_path):
        from repro.errors import ConfigError

        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(ConfigError, match="unknown rule"):
            run_lint([tmp_path / "mod.py"], select=["BOGUS9"])

    def test_syntax_error_is_a_parse_finding(self, tmp_path):
        findings = lint_snippet(tmp_path, "net/bad.py", "def broken(:\n")
        assert rules_hit(findings) == {"PARSE"}

    def test_rule_registry_is_complete(self):
        from repro.lint import rule_ids

        assert rule_ids() == [
            "DET001",
            "DET002",
            "DET003",
            "KER001",
            "SLT001",
            "WRK001",
        ]

    def test_repo_source_tree_is_clean(self):
        """The acceptance gate: zero unbaselined findings over src/."""
        repo_root = Path(__file__).resolve().parent.parent
        report = run_lint([repo_root / "src"], root=repo_root)
        assert report.clean, "\n".join(f.render() for f in report.findings)

    def test_module_context_classification(self):
        tree = ast.parse("x = 1\n")
        net = ModuleContext(path="src/repro/net/link.py", tree=tree, lines=["x = 1"])
        assert net.in_deterministic_path() and net.in_hot_path()
        assert not net.is_kernel_internal()
        env = ModuleContext(path="src/repro/net/env.py", tree=tree, lines=["x = 1"])
        assert env.is_kernel_internal()
        core = ModuleContext(
            path="src/repro/core/buffer.py", tree=tree, lines=["x = 1"]
        )
        assert core.in_hot_path()
        cold = ModuleContext(
            path="src/repro/analysis/stats.py", tree=tree, lines=["x = 1"]
        )
        assert not cold.in_hot_path() and not cold.in_deterministic_path()
