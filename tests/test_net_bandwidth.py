"""Bandwidth processes: segment validity and long-run means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.net.bandwidth import (
    ARLogNormalBandwidth,
    CompositeBandwidth,
    ConstantBandwidth,
    MarkovBandwidth,
    TraceBandwidth,
)


def time_average(process, horizon: float) -> float:
    """Empirical time-weighted mean rate over [0, horizon]."""
    elapsed = 0.0
    weighted = 0.0
    for duration, rate in process.segments():
        take = min(duration, horizon - elapsed)
        weighted += take * rate
        elapsed += take
        if elapsed >= horizon:
            break
    return weighted / horizon


class TestConstant:
    def test_segments(self):
        process = ConstantBandwidth(1e6, segment_duration=2.0)
        duration, rate = next(process.segments())
        assert (duration, rate) == (2.0, 1e6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            ConstantBandwidth(0.0)


class TestMarkov:
    def test_stationary_mean_two_state(self, rng):
        process = MarkovBandwidth([(2e6, 4.0), (1e6, 1.0)], rng)
        # pi weights by holding time: (4*2e6 + 1*1e6) / 5.
        assert process.mean_rate == pytest.approx(1.8e6, rel=1e-6)

    def test_empirical_mean_approaches_stationary(self, rng):
        process = MarkovBandwidth([(2e6, 2.0), (0.5e6, 1.0)], rng)
        empirical = time_average(process, horizon=8000.0)
        assert empirical == pytest.approx(process.mean_rate, rel=0.08)

    def test_rates_come_from_state_set(self, rng):
        process = MarkovBandwidth([(2e6, 1.0), (1e6, 1.0)], rng)
        rates = set()
        for _, (duration, rate) in zip(range(50), process.segments(), strict=False):
            assert duration > 0
            rates.add(rate)
        assert rates <= {2e6, 1e6}
        assert len(rates) == 2  # both states visited in 50 transitions

    def test_needs_two_states(self, rng):
        with pytest.raises(ConfigError):
            MarkovBandwidth([(1e6, 1.0)], rng)

    def test_transition_matrix_validated(self, rng):
        with pytest.raises(ConfigError):
            MarkovBandwidth([(1e6, 1.0), (2e6, 1.0)], rng, transitions=[[0.5, 0.5], [1.0, 0.0]])
        with pytest.raises(ConfigError):
            MarkovBandwidth([(1e6, 1.0), (2e6, 1.0)], rng, transitions=[[0.0, 0.9], [1.0, 0.0]])


class TestARLogNormal:
    def test_mean_calibration(self, rng):
        process = ARLogNormalBandwidth(1e6, sigma=0.3, rng=rng, rho=0.7, interval=0.25)
        empirical = time_average(process, horizon=4000.0)
        assert empirical == pytest.approx(1e6, rel=0.1)

    def test_rates_respect_clamps(self, rng):
        process = ARLogNormalBandwidth(
            1e6, sigma=1.0, rng=rng, rho=0.0, floor_fraction=0.2, ceiling_fraction=2.0
        )
        for _, (duration, rate) in zip(range(500), process.segments(), strict=False):
            assert duration == pytest.approx(0.5)
            assert 0.2e6 <= rate <= 2.0e6

    def test_zero_sigma_is_constant(self, rng):
        process = ARLogNormalBandwidth(1e6, sigma=0.0, rng=rng)
        rates = [rate for _, (d, rate) in zip(range(20), process.segments(), strict=False)]
        assert all(rate == pytest.approx(1e6) for rate in rates)

    def test_parameter_validation(self, rng):
        with pytest.raises(ConfigError):
            ARLogNormalBandwidth(0.0, 0.2, rng)
        with pytest.raises(ConfigError):
            ARLogNormalBandwidth(1e6, 0.2, rng, rho=1.0)
        with pytest.raises(ConfigError):
            ARLogNormalBandwidth(1e6, -0.1, rng)


class TestTrace:
    def test_replay_and_loop(self):
        process = TraceBandwidth([(1.0, 1e6), (2.0, 2e6)], loop=True)
        segments = [segment for _, segment in zip(range(4), process.segments(), strict=False)]
        assert segments == [(1.0, 1e6), (2.0, 2e6), (1.0, 1e6), (2.0, 2e6)]

    def test_mean_rate_time_weighted(self):
        process = TraceBandwidth([(1.0, 1e6), (3.0, 2e6)])
        assert process.mean_rate == pytest.approx((1e6 + 6e6) / 4.0)

    def test_no_loop_holds_last_rate(self):
        process = TraceBandwidth([(1.0, 1e6)], loop=False)
        segments = process.segments()
        next(segments)
        duration, rate = next(segments)
        assert rate == 1e6 and duration > 100

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceBandwidth([])

    def test_invalid_segment_rejected(self):
        with pytest.raises(ConfigError):
            TraceBandwidth([(0.0, 1e6)])


class TestComposite:
    def test_constant_modulation_is_identity(self, rng):
        base = TraceBandwidth([(1.0, 1e6), (1.0, 2e6)])
        modulation = ConstantBandwidth(5.0)  # any constant: normalized away
        composite = CompositeBandwidth(base, modulation)
        rates = [rate for _, (d, rate) in zip(range(4), composite.segments(), strict=False)]
        assert rates == [pytest.approx(1e6), pytest.approx(2e6)] * 2

    def test_segment_boundaries_merge(self, rng):
        base = TraceBandwidth([(2.0, 1e6)])
        modulation = TraceBandwidth([(1.0, 2.0), (1.0, 0.5)])  # mean 1.25
        composite = CompositeBandwidth(base, modulation)
        first = next(composite.segments())
        assert first[0] == pytest.approx(1.0)  # cut at the finer boundary

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_segments_always_positive(self, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        base = ARLogNormalBandwidth(1e6, sigma=0.4, rng=rng)
        modulation = MarkovBandwidth([(1.2, 4.0), (0.6, 2.0)], rng)
        composite = CompositeBandwidth(base, modulation)
        for _, (duration, rate) in zip(range(200), composite.segments(), strict=False):
            assert duration > 0
            assert rate > 0
