"""RFC 7233 byte ranges: parsing, formatting, algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RangeError
from repro.http.ranges import (
    ByteRange,
    coalesce,
    format_content_range,
    format_range_header,
    parse_content_range,
    parse_range_header,
)


class TestByteRange:
    def test_basic_properties(self):
        byte_range = ByteRange(0, 1024)
        assert byte_range.length == 1024
        assert byte_range.last == 1023

    def test_empty_rejected(self):
        with pytest.raises(RangeError):
            ByteRange(5, 5)

    def test_inverted_rejected(self):
        with pytest.raises(RangeError):
            ByteRange(10, 5)

    def test_negative_rejected(self):
        with pytest.raises(RangeError):
            ByteRange(-1, 5)

    def test_contains(self):
        byte_range = ByteRange(10, 20)
        assert byte_range.contains(10)
        assert byte_range.contains(19)
        assert not byte_range.contains(20)

    def test_overlaps(self):
        assert ByteRange(0, 10).overlaps(ByteRange(5, 15))
        assert not ByteRange(0, 10).overlaps(ByteRange(10, 20))

    def test_adjacency(self):
        assert ByteRange(0, 10).adjacent_to(ByteRange(10, 20))
        assert ByteRange(10, 20).adjacent_to(ByteRange(0, 10))
        assert not ByteRange(0, 10).adjacent_to(ByteRange(11, 20))

    def test_split(self):
        head, tail = ByteRange(0, 10).split_at(4)
        assert (head.start, head.stop, tail.start, tail.stop) == (0, 4, 4, 10)

    def test_split_at_boundary_rejected(self):
        with pytest.raises(RangeError):
            ByteRange(0, 10).split_at(0)

    def test_clamp(self):
        assert ByteRange(0, 100).clamp(50) == ByteRange(0, 50)

    def test_clamp_unsatisfiable(self):
        with pytest.raises(RangeError):
            ByteRange(100, 200).clamp(50)


class TestRangeHeader:
    def test_format(self):
        assert format_range_header(ByteRange(0, 65536)) == "bytes=0-65535"

    def test_parse_closed_form(self):
        assert parse_range_header("bytes=0-1023") == ByteRange(0, 1024)

    def test_parse_open_ended(self):
        assert parse_range_header("bytes=100-", resource_size=200) == ByteRange(100, 200)

    def test_parse_suffix(self):
        assert parse_range_header("bytes=-500", resource_size=2000) == ByteRange(1500, 2000)

    def test_suffix_bigger_than_resource(self):
        assert parse_range_header("bytes=-5000", resource_size=2000) == ByteRange(0, 2000)

    def test_open_ended_needs_size(self):
        with pytest.raises(RangeError):
            parse_range_header("bytes=100-")

    def test_multi_range_rejected(self):
        with pytest.raises(RangeError):
            parse_range_header("bytes=0-1,5-9")

    def test_inverted_rejected(self):
        with pytest.raises(RangeError):
            parse_range_header("bytes=10-5")

    def test_garbage_rejected(self):
        for bad in ("bytes", "octets=0-5", "bytes=a-b", "bytes=-"):
            with pytest.raises(RangeError):
                parse_range_header(bad)

    def test_zero_suffix_rejected(self):
        with pytest.raises(RangeError):
            parse_range_header("bytes=-0", resource_size=100)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=2**30))
    def test_format_parse_roundtrip(self, start, length):
        byte_range = ByteRange(start, start + length)
        assert parse_range_header(format_range_header(byte_range)) == byte_range


class TestContentRange:
    def test_format(self):
        assert format_content_range(ByteRange(0, 1024), 4096) == "bytes 0-1023/4096"

    def test_format_unknown_total(self):
        assert format_content_range(ByteRange(0, 10), None) == "bytes 0-9/*"

    def test_parse(self):
        assert parse_content_range("bytes 0-1023/4096") == (ByteRange(0, 1024), 4096)

    def test_parse_star_total(self):
        assert parse_content_range("bytes 5-9/*") == (ByteRange(5, 10), None)

    def test_garbage_rejected(self):
        with pytest.raises(RangeError):
            parse_content_range("bytes zero-ten/100")

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=2**30))
    def test_roundtrip(self, start, length):
        byte_range = ByteRange(start, start + length)
        total = start + length + 17
        assert parse_content_range(format_content_range(byte_range, total)) == (
            byte_range,
            total,
        )


ranges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=500),
    ).map(lambda pair: ByteRange(pair[0], pair[0] + pair[1])),
    max_size=30,
)


class TestCoalesce:
    def test_merges_adjacent_and_overlapping(self):
        merged = coalesce([ByteRange(10, 20), ByteRange(0, 10), ByteRange(15, 30)])
        assert merged == [ByteRange(0, 30)]

    def test_keeps_gaps(self):
        merged = coalesce([ByteRange(0, 10), ByteRange(20, 30)])
        assert merged == [ByteRange(0, 10), ByteRange(20, 30)]

    def test_empty(self):
        assert coalesce([]) == []

    @given(ranges_strategy)
    def test_invariants(self, ranges):
        merged = coalesce(ranges)
        # Sorted, disjoint, non-adjacent.
        for left, right in zip(merged, merged[1:], strict=False):
            assert left.stop < right.start
        # Same byte coverage.
        covered = set()
        for byte_range in ranges:
            covered.update(range(byte_range.start, byte_range.stop))
        merged_covered = set()
        for byte_range in merged:
            merged_covered.update(range(byte_range.start, byte_range.stop))
        assert covered == merged_covered
