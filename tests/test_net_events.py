"""Discrete-event kernel semantics: events, processes, conditions."""

import pytest

from repro.errors import Interrupt, ProcessError
from repro.net.env import EmptySchedule, Environment


class TestTimeouts:
    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(2.5)

        env.process(proc(env))
        env.run()
        assert env.now == 2.5

    def test_timeout_value_delivered(self, env):
        seen = []

        def proc(env):
            value = yield env.timeout(1.0, value="hello")
            seen.append(value)

        env.process(proc(env))
        env.run()
        assert seen == ["hello"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ProcessError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, env):
        def proc(env):
            yield env.timeout(0.0)

        env.process(proc(env))
        env.run()
        assert env.now == 0.0


class TestProcesses:
    def test_return_value_becomes_process_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return 42

        process = env.process(proc(env))
        env.run()
        assert process.value == 42

    def test_process_waits_on_process(self, env):
        def inner(env):
            yield env.timeout(1.0)
            return "inner-done"

        def outer(env):
            result = yield env.process(inner(env))
            return result

        process = env.process(outer(env))
        env.run()
        assert process.value == "inner-done"

    def test_exception_propagates_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        def outer(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return f"caught {exc}"

        process = env.process(outer(env))
        env.run()
        assert process.value == "caught boom"

    def test_unhandled_failure_raises_at_run(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("nobody listening")

        env.process(failing(env))
        with pytest.raises(ValueError, match="nobody listening"):
            env.run()

    def test_yielding_non_event_fails_process(self, env):
        def bad(env):
            yield 42

        def outer(env):
            with pytest.raises(ProcessError):
                yield env.process(bad(env))
            return "ok"

        process = env.process(outer(env))
        env.run()
        assert process.value == "ok"

    def test_non_generator_rejected(self, env):
        with pytest.raises(ProcessError):
            env.process(lambda: None)  # type: ignore[arg-type]


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                causes.append((interrupt.cause, env.now))

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run(victim)
        # The interrupt is delivered at its own time, not the timeout's.
        assert causes == [("wake up", 1.0)]

    def test_interrupt_finished_process_is_error(self, env):
        def quick(env):
            yield env.timeout(0.1)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(ProcessError):
            process.interrupt()

    def test_interrupted_process_can_continue(self, env):
        def resilient(env):
            try:  # noqa: SIM105 — the except-around-yield IS the behaviour under test
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            return "survived"

        process = env.process(resilient(env))

        def interrupter(env):
            yield env.timeout(2.0)
            process.interrupt()

        env.process(interrupter(env))
        result = env.run(process)
        assert result == "survived"


class TestConditions:
    def test_any_of_first_wins(self, env):
        def proc(env):
            fast = env.timeout(1.0, value="fast")
            slow = env.timeout(5.0, value="slow")
            result = yield fast | slow
            return [v for v in result.values()]

        process = env.process(proc(env))
        env.run(process)
        assert process.value == ["fast"]
        assert env.now >= 1.0

    def test_all_of_waits_for_all(self, env):
        def proc(env):
            a = env.timeout(1.0, value="a")
            b = env.timeout(3.0, value="b")
            result = yield a & b
            return sorted(result.values())

        process = env.process(proc(env))
        env.run()
        assert process.value == ["a", "b"]
        assert env.now >= 3.0

    def test_empty_all_of_fires_immediately(self, env):
        condition = env.all_of([])
        assert condition.triggered


class TestEnvironmentRun:
    def test_run_until_time_stops_clock_exactly(self, env):
        def proc(env):
            yield env.timeout(10.0)

        env.process(proc(env))
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_event_returns_value(self, env):
        event = env.event()

        def proc(env):
            yield env.timeout(2.0)
            event.succeed("payload")

        env.process(proc(env))
        assert env.run(until=event) == "payload"

    def test_run_until_unreachable_event_raises(self, env):
        event = env.event()
        with pytest.raises(EmptySchedule):
            env.run(until=event)

    def test_same_time_events_fifo(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(ProcessError):
            event.succeed(2)

    def test_event_value_before_trigger_rejected(self, env):
        event = env.event()
        with pytest.raises(ProcessError):
            _ = event.value

    def test_determinism_two_runs_identical(self):
        def trace_run():
            env = Environment()
            trace = []

            def worker(env, tag, delay):
                yield env.timeout(delay)
                trace.append((tag, env.now))
                yield env.timeout(delay)
                trace.append((tag, env.now))

            for tag, delay in (("x", 0.5), ("y", 0.5), ("z", 0.25)):
                env.process(worker(env, tag, delay))
            env.run()
            return trace

        assert trace_run() == trace_run()
