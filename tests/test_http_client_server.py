"""Simulated HTTP client + server glue over the network substrate."""

import pytest

from repro.errors import HTTPStatusError, NetworkError
from repro.http.client import SimHTTPClient, body_timing
from repro.http.messages import Request, Response
from repro.http.server import SimHTTPServer
from repro.net.bandwidth import ConstantBandwidth
from repro.net.iface import NetworkInterface
from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.net.tls import TLSParams
from repro.net.topology import Host, Network
from repro.units import mbit


def hello_app(request: Request, client_network: str) -> Response:
    if request.path == "/hello":
        return Response(200, body=f"hi {client_network}".encode())
    if request.path == "/big":
        return Response(200, body_size=1_000_000)
    if request.path == "/fail":
        return Response.error(503)
    return Response.error(404)


class World:
    """One client interface + one server host with hello_app."""

    def __init__(self, env, overload_threshold=None):
        self.env = env
        self.network = Network(env)
        link = Link(env, ConstantBandwidth(mbit(8)))
        self.iface = NetworkInterface(
            env, "wlan0", "wifi", link, ConstantLatency(0.010), "wifi-net", "10.0.0.2"
        )
        self.host = self.network.add_host(
            Host("server.example", tls=TLSParams(0.004, 0.004), network_id="wifi-net")
        )
        self.server = SimHTTPServer(
            self.host,
            hello_app,
            base_service_time=0.001,
            per_megabyte_service_time=0.0,
            overload_threshold=overload_threshold,
        )
        self.client = SimHTTPClient(env, self.network, self.iface)

    def get(self, target, expect=(200,)):
        def main(env):
            response, timing = yield env.process(
                self.client.get(
                    "server.example", Request.get(target, host="server.example"), expect=expect
                )
            )
            return response, timing

        process = self.env.process(main(self.env))
        self.env.run(process)
        return process.value


class TestRequestResponse:
    def test_basic_get(self, env):
        world = World(env)
        response, timing = world.get("/hello")
        assert response.body == b"hi wifi-net"
        assert timing.duration > 0

    def test_app_sees_client_network(self, env):
        world = World(env)
        response, _ = world.get("/hello")
        assert b"wifi-net" in response.body

    def test_status_check_raises(self, env):
        world = World(env)
        with pytest.raises(HTTPStatusError) as excinfo:
            world.get("/fail")
        assert excinfo.value.status == 503

    def test_unexpected_status_allowed_when_listed(self, env):
        world = World(env)
        response, _ = world.get("/fail", expect=(503,))
        assert response.status == 503

    def test_persistent_connection_reused(self, env):
        world = World(env)
        world.get("/hello")
        world.get("/hello")
        assert world.client.open_session_count == 1

    def test_handshake_charged_once(self, env):
        world = World(env)
        world.get("/hello")
        first_handshake = world.client.handshake_time
        world.get("/hello")
        assert world.client.handshake_time == first_handshake

    def test_virtual_body_transfer_takes_time(self, env):
        world = World(env)
        _, timing = world.get("/big")
        # 1 MB at 1 MB/s is at least a second on the wire.
        assert timing.duration > 0.9

    def test_body_timing_uses_body_bytes(self, env):
        world = World(env)
        response, timing = world.get("/big")
        adjusted = body_timing(timing, response)
        assert adjusted.num_bytes == 1_000_000
        assert adjusted.duration == timing.duration

    def test_server_request_counter(self, env):
        world = World(env)
        world.get("/hello")
        world.get("/hello")
        assert world.server.requests_served == 2

    def test_bytes_served_accounting(self, env):
        world = World(env)
        world.get("/big")
        assert world.host.bytes_served == 1_000_000


class TestFailureHandling:
    def test_host_failure_mid_request_evicts_session(self, env):
        world = World(env)
        world.get("/hello")

        def killer(env):
            yield env.timeout(0.05)
            world.host.fail()

        env.process(killer(env))

        def main(env):
            with pytest.raises(NetworkError):
                yield env.process(
                    world.client.get(
                        "server.example", Request.get("/big", host="server.example")
                    )
                )
            return world.client.open_session_count

        process = env.process(main(env))
        env.run(process)
        assert process.value == 0

    def test_reconnect_after_recovery(self, env):
        world = World(env)
        world.get("/hello")
        world.host.fail()
        world.host.recover()
        response, _ = world.get("/hello")
        assert response.status == 200

    def test_disconnect_all(self, env):
        world = World(env)
        world.get("/hello")
        world.client.disconnect_all()
        assert world.client.open_session_count == 0


class TestOverloadModel:
    def test_concurrent_requests_pay_penalty(self, env):
        world = World(env, overload_threshold=1)
        timings = []

        def one(env):
            response, timing = yield env.process(
                world.client.request(
                    "server.example", Request.get("/big", host="server.example")
                )
            )
            timings.append(timing)

        # Two concurrent transfers on separate client sessions: exceed
        # the threshold so at least one pays the queueing penalty.
        client2 = SimHTTPClient(env, world.network, world.iface)

        def two(env):
            response, timing = yield env.process(
                client2.request("server.example", Request.get("/big", host="server.example"))
            )
            timings.append(timing)

        p1 = env.process(one(env))
        p2 = env.process(two(env))
        env.run(p1 & p2)

        env2_world = World(type(env)(), overload_threshold=None)
        _, solo_timing = env2_world.get("/big")
        # Overloaded completions are strictly slower than a solo run
        # (sharing alone would double it; the penalty adds more).
        assert min(t.duration for t in timings) > solo_timing.duration
