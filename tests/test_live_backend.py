"""Real-socket asyncio backend: shaping, server, end-to-end sessions."""

import asyncio
import time

import pytest

from repro.core.config import PlayerConfig
from repro.errors import ConfigError
from repro.live.client import LivePlayerDriver
from repro.live.harness import LiveTestbed, run_live_session
from repro.live.server import synthetic_body
from repro.live.shaping import PathShape, TokenBucket


def run(coroutine):
    return asyncio.run(coroutine)


class TestTokenBucket:
    def test_burst_granted_immediately(self):
        bucket = TokenBucket(rate=1000.0, burst=500.0)
        assert bucket.try_take(400.0) == 0.0

    def test_deficit_requires_waiting(self):
        bucket = TokenBucket(rate=1000.0, burst=100.0)
        bucket.try_take(100.0)
        wait = bucket.try_take(250.0)
        assert wait == pytest.approx(0.25, rel=0.1)

    def test_long_run_rate_conformance(self):
        # Simulated clock: drain 10 kB through a 1 kB/s bucket.
        clock_value = [0.0]
        bucket = TokenBucket(rate=1000.0, burst=100.0, clock=lambda: clock_value[0])
        for _ in range(100):
            wait = bucket.try_take(100.0)
            clock_value[0] += wait
        assert clock_value[0] == pytest.approx(10_000 / 1000.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1.0)
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ConfigError):
            bucket.try_take(0.0)


class TestPathShape:
    def test_rtt(self):
        assert PathShape("x", rate=1e6, one_way_delay=0.01).rtt == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PathShape("x", rate=0.0, one_way_delay=0.01)
        with pytest.raises(ConfigError):
            PathShape("x", rate=1.0, one_way_delay=-0.1)


class TestSyntheticBody:
    def test_deterministic(self):
        assert synthetic_body(1000) == synthetic_body(1000)

    def test_size_exact(self):
        for size in (0, 1, 250, 251, 252, 10_000):
            assert len(synthetic_body(size)) == size

    def test_offset_varies_content(self):
        assert synthetic_body(100, 0) != synthetic_body(100, 1)


@pytest.fixture(scope="module")
def quick_config():
    return PlayerConfig(
        prebuffer_s=4.0,
        low_watermark_s=1.0,
        rebuffer_fetch_s=2.0,
        itag=18,
        base_chunk_bytes=32 * 1024,
    )


class TestLiveSession:
    def test_prebuffer_over_loopback(self, quick_config):
        async def main():
            testbed = LiveTestbed(video_duration_s=20.0)
            await testbed.start()
            try:
                return await run_live_session(
                    testbed, quick_config, stop="prebuffer", timeout_s=30.0
                )
            finally:
                await testbed.stop()

        outcome = run(main())
        assert outcome.stop_reason == "prebuffer-complete"
        assert outcome.startup_delay is not None and outcome.startup_delay > 0
        # Both paths contributed.
        assert len(outcome.requests_by_path) == 2

    def test_wifi_like_path_dominates(self, quick_config):
        async def main():
            testbed = LiveTestbed(video_duration_s=20.0)
            await testbed.start()
            try:
                return await run_live_session(
                    testbed, quick_config, stop="prebuffer", timeout_s=30.0
                )
            finally:
                await testbed.stop()

        outcome = run(main())
        # The faster, lower-latency path carries the majority share.
        assert outcome.metrics.traffic_fraction(0, "prebuffer") > 0.5

    def test_copyrighted_video_deciphered_live(self, quick_config):
        async def main():
            testbed = LiveTestbed(video_duration_s=12.0, copyrighted=True)
            await testbed.start()
            try:
                return await run_live_session(
                    testbed, quick_config, stop="prebuffer", timeout_s=30.0
                )
            finally:
                await testbed.stop()

        outcome = run(main())
        assert outcome.stop_reason == "prebuffer-complete"

    def test_rebuffer_cycle_live(self, quick_config):
        async def main():
            testbed = LiveTestbed(video_duration_s=25.0)
            await testbed.start()
            try:
                return await run_live_session(
                    testbed,
                    quick_config,
                    stop="cycles",
                    target_cycles=1,
                    timeout_s=40.0,
                )
            finally:
                await testbed.stop()

        outcome = run(main())
        assert outcome.stop_reason == "cycles-complete"
        assert len(outcome.metrics.completed_cycle_durations()) >= 1

    def test_invalid_stop_rejected(self):
        with pytest.raises(ValueError):
            LivePlayerDriver(["127.0.0.1:1"], "x" * 11, stop="never")
