"""Bandwidth estimators: Eq. 1 (EWMA) and Eq. 2 (incremental harmonic)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import harmonic_mean
from repro.core.estimators import (
    EWMAEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
    SlidingWindowEstimator,
    make_estimator,
)
from repro.errors import ConfigError, SchedulerError

positive_samples = st.lists(
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)


class TestEWMA:
    def test_first_sample_becomes_estimate(self):
        estimator = EWMAEstimator(alpha=0.9)
        estimator.update(1234.0)
        assert estimator.estimate == 1234.0

    def test_equation_one(self):
        # ŵ(t+1) = α ŵ(t) + (1−α) w(t), α = 0.9 (§3.3).
        estimator = EWMAEstimator(alpha=0.9)
        estimator.update(100.0)
        estimator.update(200.0)
        assert estimator.estimate == pytest.approx(0.9 * 100.0 + 0.1 * 200.0)

    def test_alpha_point_nine_is_sluggish(self):
        # The paper's α=0.9 weighs history heavily: after a step change,
        # the estimate moves less than 20 % of the way in one sample.
        estimator = EWMAEstimator(alpha=0.9)
        estimator.update(100.0)
        estimator.update(1000.0)
        assert estimator.estimate < 100.0 + 0.2 * 900.0

    def test_none_before_samples(self):
        assert EWMAEstimator().estimate is None

    def test_reset(self):
        estimator = EWMAEstimator()
        estimator.update(5.0)
        estimator.reset()
        assert estimator.estimate is None and estimator.sample_count == 0

    def test_invalid_alpha(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigError):
                EWMAEstimator(alpha=alpha)

    def test_nonpositive_sample_rejected(self):
        with pytest.raises(SchedulerError):
            EWMAEstimator().update(0.0)

    @given(positive_samples, st.floats(min_value=0.05, max_value=0.95))
    def test_estimate_within_sample_range(self, samples, alpha):
        estimator = EWMAEstimator(alpha=alpha)
        for sample in samples:
            estimator.update(sample)
        tolerance = 1e-9 * max(samples)
        assert min(samples) - tolerance <= estimator.estimate <= max(samples) + tolerance


class TestHarmonic:
    def test_matches_batch_harmonic_mean(self):
        estimator = HarmonicMeanEstimator()
        samples = [100.0, 50.0, 200.0, 80.0]
        for sample in samples:
            estimator.update(sample)
        assert estimator.estimate == pytest.approx(harmonic_mean(samples))

    @given(positive_samples)
    def test_equation_two_incremental_equals_batch(self, samples):
        # The paper's memory-saving claim: Eq. 2's running update equals
        # the definitional harmonic mean over the full history.
        estimator = HarmonicMeanEstimator()
        for sample in samples:
            estimator.update(sample)
        assert estimator.estimate == pytest.approx(harmonic_mean(samples), rel=1e-9)

    def test_outlier_damping_vs_arithmetic(self):
        # One 10x burst moves the harmonic mean far less than the
        # arithmetic mean — the §3.3 rationale.
        samples = [100.0] * 9 + [1000.0]
        estimator = HarmonicMeanEstimator()
        for sample in samples:
            estimator.update(sample)
        arithmetic = float(np.mean(samples))
        assert estimator.estimate < arithmetic
        assert estimator.estimate < 120.0  # stays near the base rate

    def test_none_before_samples(self):
        assert HarmonicMeanEstimator().estimate is None

    def test_sample_count(self):
        estimator = HarmonicMeanEstimator()
        for value in (1.0, 2.0, 3.0):
            estimator.update(value)
        assert estimator.sample_count == 3

    def test_reset(self):
        estimator = HarmonicMeanEstimator()
        estimator.update(10.0)
        estimator.reset()
        estimator.update(99.0)
        assert estimator.estimate == 99.0


class TestOthers:
    def test_last_sample(self):
        estimator = LastSampleEstimator()
        estimator.update(10.0)
        estimator.update(20.0)
        assert estimator.estimate == 20.0

    def test_sliding_window_mean(self):
        estimator = SlidingWindowEstimator(window=3)
        for value in (10.0, 20.0, 30.0, 40.0):
            estimator.update(value)
        assert estimator.estimate == pytest.approx(30.0)  # last three

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            SlidingWindowEstimator(window=0)


class TestFactory:
    @pytest.mark.parametrize("name", ["ewma", "harmonic", "last", "window"])
    def test_registry(self, name):
        assert make_estimator(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_estimator("kalman")

    def test_parameters_forwarded(self):
        estimator = make_estimator("ewma", alpha=0.5)
        estimator.update(100.0)
        estimator.update(200.0)
        assert estimator.estimate == pytest.approx(150.0)
