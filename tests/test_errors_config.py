"""Exception hierarchy contracts and PlayerConfig validation."""

import pytest

from repro import errors
from repro.core.config import PlayerConfig
from repro.units import KB, MB


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj.__module__ == "repro.errors"
            ):
                if obj in (errors.ReproError,):
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_server_unavailable_is_both_cdn_and_network(self):
        # Transport-level handlers must catch crashed servers (see
        # errors.py docstring).
        assert issubclass(errors.ServerUnavailableError, errors.CDNError)
        assert issubclass(errors.ServerUnavailableError, errors.NetworkError)

    def test_interrupt_carries_cause(self):
        interrupt = errors.Interrupt(cause="timeout")
        assert interrupt.cause == "timeout"

    def test_http_status_error_carries_status(self):
        error = errors.HTTPStatusError(503, "Service Unavailable")
        assert error.status == 503
        assert "503" in str(error)

    def test_unit_parse_is_config_error(self):
        assert issubclass(errors.UnitParseError, errors.ConfigError)

    def test_sources_exhausted_is_player_error(self):
        assert issubclass(errors.SourcesExhaustedError, errors.PlayerError)

    def test_one_base_catches_all_at_api_boundary(self):
        for exc in (
            errors.DNSError("x"),
            errors.RangeError("x"),
            errors.TokenError("x"),
            errors.BufferError_("x"),
            errors.ClockError("x"),
        ):
            assert isinstance(exc, errors.ReproError)


class TestPlayerConfig:
    def test_paper_defaults(self):
        config = PlayerConfig.paper_default()
        assert config.prebuffer_s == 40.0
        assert config.low_watermark_s == 10.0
        assert config.rebuffer_fetch_s == 20.0
        assert config.scheduler == "harmonic"
        assert config.base_chunk_bytes == 256 * KB
        assert config.min_chunk_bytes == 16 * KB
        assert config.delta == 0.05
        assert config.alpha == 0.9
        assert config.itag == 22
        assert config.max_paths == 2

    def test_with_modifies_a_copy(self):
        base = PlayerConfig()
        modified = base.with_(scheduler="ratio")
        assert modified.scheduler == "ratio"
        assert base.scheduler == "harmonic"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(prebuffer_s=0.0),
            dict(prebuffer_s=10.0, low_watermark_s=10.0),
            dict(low_watermark_s=-1.0),
            dict(rebuffer_fetch_s=0.0),
            dict(min_chunk_bytes=0),
            dict(base_chunk_bytes=8 * KB),  # below min chunk
            dict(max_chunk_bytes=128 * KB),  # below base chunk
            dict(delta=0.0),
            dict(delta=1.0),
            dict(alpha=1.0),
            dict(max_paths=3),
            dict(tick_s=0.0),
            dict(max_out_of_order=0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(errors.ConfigError):
            PlayerConfig(**kwargs)

    def test_from_strings_parses_sizes(self):
        config = PlayerConfig.from_strings(
            base_chunk_bytes="1MB", prebuffer_s="20", scheduler="ewma", itag="18"
        )
        assert config.base_chunk_bytes == 1 * MB
        assert config.prebuffer_s == 20.0
        assert config.scheduler == "ewma"
        assert config.itag == 18

    def test_frozen(self):
        with pytest.raises(Exception):
            PlayerConfig().prebuffer_s = 99.0  # type: ignore[misc]
