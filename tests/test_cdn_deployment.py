"""CDN deployment builder."""

import pytest

from repro.cdn.catalog import Catalog
from repro.cdn.deployment import CDNConfig, CDNDeployment, PROXY_DNS_NAME
from repro.cdn.videos import VideoMeta
from repro.errors import ConfigError
from repro.net.dns import StubResolver
from repro.net.env import Environment
from repro.net.topology import Network


def build(env=None, rng=None, **config_kwargs):
    import numpy as np

    env = env or Environment()
    network = Network(env)
    resolver = StubResolver(env)
    catalog = Catalog()
    catalog.add(
        VideoMeta(video_id="abcdefghijk", title="t", author="a", duration_s=60.0)
    )
    deployment = CDNDeployment(
        env,
        network,
        catalog,
        CDNConfig(**config_kwargs),
        rng=rng if rng is not None else np.random.Generator(np.random.PCG64(1)),
        resolver=resolver,
    )
    return deployment, network, resolver


class TestDeployment:
    def test_default_shape(self, rng):
        deployment, network, _ = build(rng=rng)
        assert set(deployment.pools) == {"wifi-net", "lte-net"}
        for pool in deployment.pools.values():
            assert len(pool.proxy_hosts) == 1
            assert len(pool.video_hosts) == 2

    def test_hosts_registered_in_network(self, rng):
        deployment, network, _ = build(rng=rng)
        host = network.host("v1.wifi-net.example")
        assert host.network_id == "wifi-net"
        assert host.app is not None

    def test_dns_records_per_network(self, rng):
        _, _, resolver = build(rng=rng)
        wifi = resolver.resolve_now(PROXY_DNS_NAME, "wifi-net")
        lte = resolver.resolve_now(PROXY_DNS_NAME, "lte-net")
        assert wifi == ["proxy1.wifi-net.example"]
        assert lte == ["proxy1.lte-net.example"]

    def test_selection_pools_match_video_hosts(self, rng):
        deployment, _, _ = build(rng=rng)
        assert deployment.selection.select("wifi-net") == deployment.video_addresses(
            "wifi-net"
        )

    def test_custom_sizes(self, rng):
        deployment, _, _ = build(rng=rng, video_servers_per_network=3, proxies_per_network=2)
        pool = deployment.pools["wifi-net"]
        assert len(pool.video_hosts) == 3
        assert len(pool.proxy_hosts) == 2

    def test_single_network_deployment(self, rng):
        deployment, _, _ = build(rng=rng, networks=("wifi-net",))
        assert list(deployment.pools) == ["wifi-net"]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CDNConfig(networks=())
        with pytest.raises(ConfigError):
            CDNConfig(video_servers_per_network=0)

    def test_bytes_served_starts_zero(self, rng):
        deployment, _, _ = build(rng=rng)
        assert all(v == 0 for v in deployment.total_bytes_served().values())

    def test_proxy_address_helper(self, rng):
        deployment, _, _ = build(rng=rng)
        assert deployment.proxy_address("lte-net") == "proxy1.lte-net.example"
