"""The content-addressed study cache: keys, hits, resume, quarantine.

The acceptance bar (ISSUE 8): a repeated ``Study.grid(...).run(cache=
DIR)`` submits ZERO engine work units on the second run and returns an
identical StudyResult with byte-identical saved archives; a widened
grid submits only the delta cells; cached and fresh cells are
bit-identical across the serial/process backends and the heapq/calendar
kernels; a code edit (fingerprint change) invalidates; corrupt entries
are quarantined, never served and never fatal.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.execution import SerialEngine
from repro.study import (
    Study,
    StudyCache,
    code_fingerprint,
    get_experiment,
    resolve_cache,
)
from repro.study.cache import CACHE_VERSION, CacheInfo


class CountingEngine(SerialEngine):
    """A serial engine that counts every work unit it is handed."""

    def __init__(self):
        self.mapped = 0

    def map(self, specs):
        self.mapped += len(specs)
        return super().map(specs)


def small_grid(**kwargs):
    return Study("fig2", trials=2).grid(seed=[2014, 2015], **kwargs)


def assert_identical(result, other):
    assert result.rendered == other.rendered
    assert result.column_mismatches(other) == []


class TestCodeFingerprint:
    def test_stable_across_calls(self):
        assert code_fingerprint() == code_fingerprint()

    def test_covers_file_content_not_mtime(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        first = code_fingerprint(tmp_path)
        os.utime(tmp_path / "mod.py", ns=(1, 1))  # touch, same bytes
        assert code_fingerprint(tmp_path) == first

    def test_changes_on_code_edit(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        first = code_fingerprint(tmp_path)
        (tmp_path / "mod.py").write_text("x = 2\n")
        assert code_fingerprint(tmp_path) != first

    def test_changes_on_new_file(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        first = code_fingerprint(tmp_path)
        (tmp_path / "extra.py").write_text("y = 1\n")
        assert code_fingerprint(tmp_path) != first


class TestCellKey:
    @pytest.fixture()
    def cache(self, tmp_path):
        return StudyCache(tmp_path / "cache")

    def test_stable_for_equal_params(self, cache):
        definition = get_experiment("fig2")
        params = definition.schema.resolve({"trials": 2})
        assert cache.cell_key(definition, params, "f") == cache.cell_key(
            definition, params, "f"
        )

    def test_equivalent_spellings_share_a_key(self, cache):
        definition = get_experiment("fig3")
        spelled = definition.schema.resolve({"chunks": "64KB,1MB", "trials": 2})
        numeric = definition.schema.resolve(
            {"chunks": (65536, 1048576), "trials": 2}
        )
        assert cache.cell_key(definition, spelled, "f") == cache.cell_key(
            definition, numeric, "f"
        )

    def test_any_param_change_is_a_new_key(self, cache):
        definition = get_experiment("fig2")
        base = definition.schema.resolve({"trials": 2, "seed": 2014})
        other = definition.schema.resolve({"trials": 2, "seed": 2015})
        assert cache.cell_key(definition, base, "f") != cache.cell_key(
            definition, other, "f"
        )

    def test_fingerprint_change_is_a_new_key(self, cache):
        definition = get_experiment("fig2")
        params = definition.schema.resolve({"trials": 2})
        assert cache.cell_key(definition, params, "aaa") != cache.cell_key(
            definition, params, "bbb"
        )

    def test_experiment_identity_is_in_the_key(self, cache):
        fig2 = get_experiment("fig2")
        fig4 = get_experiment("fig4")
        shared = {"trials": 2}
        assert cache.cell_key(
            fig2, fig2.schema.resolve(shared), "f"
        ) != cache.cell_key(fig4, fig4.schema.resolve(shared), "f")


class TestCacheHitsAndResume:
    def test_second_run_submits_zero_work_units(self, tmp_path):
        first = small_grid().run(cache=tmp_path)
        assert first.cache_info == CacheInfo(hits=0, misses=2, submitted_units=12)
        engine = CountingEngine()
        second = small_grid().run(engine=engine, cache=tmp_path)
        assert second.cache_info == CacheInfo(hits=2, misses=0, submitted_units=0)
        assert engine.mapped == 0
        assert_identical(first, second)

    def test_fully_cached_run_never_consults_repro_jobs(
        self, tmp_path, monkeypatch
    ):
        small_grid().run(cache=tmp_path)
        monkeypatch.setenv("REPRO_JOBS", "not-a-backend")
        result = small_grid().run(cache=tmp_path)
        assert result.cache_info.submitted_units == 0

    def test_widened_grid_submits_only_the_delta(self, tmp_path):
        small_grid().run(cache=tmp_path)
        engine = CountingEngine()
        widened = (
            Study("fig2", trials=2)
            .grid(seed=[2014, 2015, 2016])
            .run(engine=engine, cache=tmp_path)
        )
        assert widened.cache_info == CacheInfo(hits=2, misses=1, submitted_units=6)
        assert engine.mapped == 6
        # The delta cell is now cached too: a third run is all hits.
        third = Study("fig2", trials=2).grid(seed=[2014, 2015, 2016]).run(
            cache=tmp_path
        )
        assert third.cache_info.hits == 3
        assert_identical(widened, third)

    def test_saved_archives_byte_identical_cached_vs_fresh(self, tmp_path):
        first = small_grid().run(cache=tmp_path / "cache")
        second = small_grid().run(cache=tmp_path / "cache")
        first.save(tmp_path / "fresh")
        second.save(tmp_path / "cached")
        for suffix in (".json", ".npz"):
            fresh = (tmp_path / "fresh").with_suffix(suffix).read_bytes()
            cached = (tmp_path / "cached").with_suffix(suffix).read_bytes()
            assert fresh == cached, suffix

    def test_process_backend_hits_a_serially_written_cache(self, tmp_path):
        serial = small_grid().run(cache=tmp_path)
        pooled = small_grid().run(jobs=2, cache=tmp_path)
        assert pooled.cache_info.submitted_units == 0
        assert_identical(serial, pooled)

    def test_serial_run_hits_a_process_written_cache(self, tmp_path):
        pooled = small_grid().run(jobs=2, cache=tmp_path)
        assert pooled.cache_info.misses == 2
        serial = small_grid().run(cache=tmp_path)
        assert serial.cache_info.submitted_units == 0
        assert_identical(pooled, serial)

    @pytest.mark.parametrize("kernel", ["heapq", "calendar"])
    def test_cache_serves_across_kernels(self, tmp_path, kernel):
        written = small_grid().run(kernel=kernel, cache=tmp_path)
        other = "calendar" if kernel == "heapq" else "heapq"
        served = small_grid().run(kernel=other, cache=tmp_path)
        assert served.cache_info.submitted_units == 0
        assert_identical(written, served)

    def test_no_cache_means_no_cache_info(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        result = Study("fig2", trials=1).run()
        assert result.cache_info is None

    def test_repro_cache_env_enables_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        first = Study("fig2", trials=1).run()
        second = Study("fig2", trials=1).run()
        assert first.cache_info.misses == 1
        assert second.cache_info == CacheInfo(hits=1, misses=0, submitted_units=0)

    def test_run_experiment_threads_the_cache_through(self, tmp_path):
        from repro.study import run_experiment

        first = run_experiment("fig2", trials=2, cache=str(tmp_path))
        second = run_experiment("fig2", trials=2, cache=str(tmp_path))
        assert StudyCache(tmp_path).entries()  # something was stored
        assert first.rendered == second.rendered


class TestInvalidation:
    def test_code_edit_invalidates_every_entry(self, tmp_path, monkeypatch):
        small_grid().run(cache=tmp_path)
        monkeypatch.setattr(
            "repro.study.study.code_fingerprint",
            lambda root=None: "deadbeef" * 5,
            raising=False,
        )
        # study.py imports lazily inside run(); patch the source module.
        monkeypatch.setattr(
            "repro.study.cache.code_fingerprint", lambda root=None: "deadbeef" * 5
        )
        rerun = small_grid().run(cache=tmp_path)
        assert rerun.cache_info == CacheInfo(hits=0, misses=2, submitted_units=12)

    def test_lookup_with_explicit_fingerprints(self, tmp_path):
        definition = get_experiment("fig2")
        cache = StudyCache(tmp_path)
        result = Study("fig2", trials=2).run()
        cell = result.only()
        cache.store(definition, cell.params, cell, fingerprint="old-code")
        assert cache.lookup(definition, cell.params, "old-code") is not None
        assert cache.lookup(definition, cell.params, "new-code") is None

    def test_gc_collects_outdated_fingerprints(self, tmp_path):
        definition = get_experiment("fig2")
        cache = StudyCache(tmp_path)
        result = Study("fig2", trials=2).run()
        cell = result.only()
        cache.store(definition, cell.params, cell, fingerprint="old-code")
        cache.store(definition, cell.params, cell)  # current fingerprint
        removed, freed = cache.gc()
        assert removed == 1 and freed > 0
        assert len(cache.entries()) == 1
        removed, _freed = cache.gc(everything=True)
        assert removed == 1 and cache.entries() == []


class TestQuarantine:
    def stored_entry(self, tmp_path):
        cache = StudyCache(tmp_path)
        result = small_grid().run(cache=cache)
        assert result.cache_info.misses == 2
        return cache, cache.entries()

    def test_truncated_npz_is_quarantined_and_recomputed(self, tmp_path):
        cache, entries = self.stored_entry(tmp_path)
        victim = entries[0]
        victim.npz_path.write_bytes(victim.npz_path.read_bytes()[:64])
        rerun = small_grid().run(cache=cache)
        assert rerun.cache_info == CacheInfo(hits=1, misses=1, submitted_units=6)
        quarantined = list(cache.quarantine_dir.iterdir())
        assert any(path.name == victim.npz_path.name for path in quarantined)
        # The recompute re-stored a good entry: next run is all hits.
        third = small_grid().run(cache=cache)
        assert third.cache_info.submitted_units == 0

    def test_missing_npz_payload_is_a_miss_not_a_crash(self, tmp_path):
        cache, entries = self.stored_entry(tmp_path)
        entries[0].npz_path.unlink()
        rerun = small_grid().run(cache=cache)
        assert rerun.cache_info.hits == 1 and rerun.cache_info.misses == 1

    def test_wrong_experiment_behind_a_key_is_quarantined(self, tmp_path):
        cache, entries = self.stored_entry(tmp_path)
        other = Study("fig4", trials=1).run()
        foreign = StudyCache(tmp_path / "other")
        foreign.store(get_experiment("fig4"), other.only().params, other.only())
        foreign_entry = foreign.entries()[0]
        victim = entries[0]
        victim.json_path.write_bytes(foreign_entry.json_path.read_bytes())
        victim.npz_path.write_bytes(foreign_entry.npz_path.read_bytes())
        rerun = small_grid().run(cache=cache)
        assert rerun.cache_info.misses == 1
        assert cache.quarantine_dir.is_dir()

    def test_verify_reports_bad_entries(self, tmp_path):
        cache, entries = self.stored_entry(tmp_path)
        ok, bad = cache.verify()
        assert len(ok) == 2 and bad == []
        entries[0].npz_path.write_bytes(b"not an npz")
        ok, bad = cache.verify()
        assert len(ok) == 1 and len(bad) == 1
        assert entries[0].key == bad[0][0]

    def test_verify_catches_renamed_entries(self, tmp_path):
        cache, entries = self.stored_entry(tmp_path)
        victim = entries[0]
        fake = "0" * len(victim.key)
        for path in (victim.json_path, victim.npz_path, victim.meta_path):
            path.rename(path.with_name(path.name.replace(victim.key, fake)))
        ok, bad = cache.verify()
        assert len(ok) == 1
        assert [key for key, _reason in bad] == [fake]
        assert "key mismatch" in bad[0][1]

    def test_gc_sweeps_quarantine_and_temp_leftovers(self, tmp_path):
        cache, entries = self.stored_entry(tmp_path)
        entries[0].npz_path.write_bytes(b"junk")
        assert small_grid().run(cache=cache).cache_info.misses == 1
        (cache.entries_dir / "stray.npz.tmp-1-2").write_bytes(b"torn")
        removed, freed = cache.gc()
        assert freed > 0
        assert not cache.quarantine_dir.exists()
        assert not list(cache.entries_dir.glob("*.tmp-*"))


class TestConcurrency:
    def test_concurrent_runs_against_one_cache_dir(self, tmp_path):
        results = [None] * 4
        errors = []

        def worker(slot):
            try:
                results[slot] = small_grid().run(cache=tmp_path)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for other in results[1:]:
            assert_identical(results[0], other)
        # The cache converged to exactly the two cells, all complete.
        cache = StudyCache(tmp_path)
        entries = cache.entries()
        assert len(entries) == 2 and all(entry.complete() for entry in entries)
        assert cache.verify()[1] == []


class TestResolveCacheAndManifest:
    def test_resolve_cache_passthrough_and_env(self, tmp_path, monkeypatch):
        cache = StudyCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(str(tmp_path)).root == tmp_path
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_CACHE", "")
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert resolve_cache(None).root == tmp_path

    def test_manifest_is_json_safe_and_complete(self, tmp_path):
        cache = StudyCache(tmp_path)
        small_grid().run(cache=cache)
        manifest = cache.manifest()
        json.dumps(manifest)  # must not raise
        assert manifest["cache_version"] == CACHE_VERSION
        assert len(manifest["entries"]) == 2
        for entry in manifest["entries"]:
            assert entry["complete"] is True
            assert entry["experiment"] == "fig2"
            assert entry["size_bytes"] > 0

    def test_cached_cell_columns_are_real_ndarrays(self, tmp_path):
        small_grid().run(cache=tmp_path)
        served = small_grid().run(cache=tmp_path)
        for cell in served.cells:
            for columns in cell.columns.values():
                for column in columns.values():
                    assert isinstance(column, np.ndarray)


class TestRetentionGC:
    """`repro cache gc --max-bytes/--max-age`: bounded oldest-first."""

    def _stamp(self, cache: StudyCache, created: dict[str, int]) -> None:
        """Rewrite each entry's created_unix for deterministic aging."""
        for entry in cache.entries():
            meta = dict(entry.meta)
            meta["created_unix"] = created[entry.key]
            entry.meta_path.write_text(json.dumps(meta, sort_keys=True))

    def _filled_cache(self, tmp_path) -> tuple[StudyCache, list[str]]:
        """Three valid entries, stamped oldest -> newest in key order."""
        cache = StudyCache(tmp_path / "cache")
        Study("fig2", trials=1).grid(seed=[2014, 2015, 2016]).run(cache=cache)
        keys = [entry.key for entry in cache.entries()]
        assert len(keys) == 3
        self._stamp(
            cache, {key: 1_000 + 100 * index for index, key in enumerate(keys)}
        )
        return cache, keys

    def test_max_age_evicts_only_the_old(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        # now=86400*2+1150: entries at t=1000,1100 are older than 1 day,
        # the one at t=1200 is not.
        removed, freed = cache.gc(max_age_days=1.0, now=86400.0 + 1150.0)
        assert removed == 2
        assert freed > 0
        assert [entry.key for entry in cache.entries()] == [keys[2]]

    def test_max_bytes_evicts_oldest_first(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        sizes = {entry.key: entry.size_bytes() for entry in cache.entries()}
        budget = sizes[keys[1]] + sizes[keys[2]]
        removed, freed = cache.gc(max_bytes=budget, now=2_000.0)
        assert removed == 1
        assert freed == sizes[keys[0]]
        survivors = {entry.key for entry in cache.entries()}
        assert survivors == {keys[1], keys[2]}

    def test_zero_budget_clears_everything(self, tmp_path):
        cache, _keys = self._filled_cache(tmp_path)
        removed, _freed = cache.gc(max_bytes=0, now=2_000.0)
        assert removed == 3
        assert cache.entries() == []

    def test_bounds_spare_a_cache_within_budget(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        removed, freed = cache.gc(
            max_bytes=10**9, max_age_days=365.0, now=2_000.0
        )
        assert (removed, freed) == (0, 0)
        assert [entry.key for entry in cache.entries()] == keys

    def test_bounded_survivors_still_serve_hits(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        Study("fig2", trials=1).grid(seed=[2014, 2015]).run(cache=cache)
        entries = cache.entries()
        budget = max(entry.size_bytes() for entry in entries) + 8
        cache.gc(max_bytes=budget)
        again = Study("fig2", trials=1).grid(seed=[2014, 2015]).run(cache=cache)
        assert again.cache_info is not None
        assert again.cache_info.hits == 1
        assert again.cache_info.misses == 1
