"""Kernel fast paths: slotted events, clone-free resume, closed-form slow start.

These pin the microbehaviour the perf work must not change:

* yielding an *already-processed* event resumes the process at the same
  timestamp with the event's original outcome (success and failure);
* an interrupt racing that fast-path resume loses the same way it lost
  against the old clone-event implementation: the resume runs first,
  the interrupt lands at the process's next wait point;
* the link's analytic slow-start schedule reproduces the doubling
  timeline the per-exchange pacer process used to produce.
"""

import pytest

from repro.errors import ClockError, ConfigError, Interrupt
from repro.net.bandwidth import ConstantBandwidth
from repro.net.link import Link


class TestSlots:
    def test_event_types_reject_stray_attributes(self, env):
        event = env.event()
        timeout = env.timeout(1.0)

        def proc(env):
            yield env.timeout(0.0)

        process = env.process(proc(env))
        for obj in (event, timeout, process):
            with pytest.raises(AttributeError):
                obj.stray_attribute = 1
        env.run()

    def test_no_instance_dict(self, env):
        assert not hasattr(env.event(), "__dict__")
        assert not hasattr(env.timeout(1.0), "__dict__")


class TestProcessedTargetResume:
    def test_yielding_processed_event_delivers_value_same_time(self, env):
        early = env.timeout(1.0, value="payload")
        seen = []

        def late_waiter(env):
            yield env.timeout(2.0)
            value = yield early  # processed a full second ago
            seen.append((env.now, value))

        env.process(late_waiter(env))
        env.run()
        assert seen == [(2.0, "payload")]

    def test_yielding_processed_failure_raises_in_waiter(self, env):
        failed = env.event()
        failed.fail(ValueError("boom"))
        failed.defused = True  # nobody waits at its own dispatch

        def late_waiter(env):
            yield env.timeout(1.0)
            try:
                yield failed
            except ValueError as exc:
                return f"caught {exc}"

        process = env.process(late_waiter(env))
        env.run()
        assert process.value == "caught boom"

    def test_resume_ordering_is_fifo_among_urgent_events(self, env):
        """Two processes yielding processed events resume in the order
        they yielded, ahead of co-timed NORMAL events."""
        early = env.timeout(1.0, value="x")
        order = []

        def make_waiter(name):
            def waiter(env):
                yield env.timeout(2.0)
                yield early
                order.append(name)

            return waiter

        def normal_timer(env):
            yield env.timeout(2.0)
            yield env.timeout(0.0)  # NORMAL event at t=2
            order.append("timer")

        env.process(make_waiter("first")(env))
        env.process(make_waiter("second")(env))
        env.process(normal_timer(env))
        env.run()
        assert order == ["first", "second", "timer"]

    def test_interrupt_vs_fastpath_resume_race(self, env):
        """An interrupt issued while a fast-path resume is pending is
        delivered *after* the resume, at the next wait point."""
        early = env.timeout(1.0, value="x")
        seen = []

        def victim(env):
            yield env.timeout(2.0)
            value = yield early  # pending fast-path resume at t=2
            seen.append(("resumed", env.now, value))
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                seen.append(("interrupted", env.now, interrupt.cause))

        process = env.process(victim(env))

        def interrupter(env):
            yield env.timeout(2.0)
            process.interrupt("race")

        env.process(interrupter(env))
        env.run()
        assert seen == [("resumed", 2.0, "x"), ("interrupted", 2.0, "race")]

    def test_stale_direct_resume_dropped_after_interrupt(self, env):
        """A pending fast-path resume whose process was meanwhile moved
        on by an interrupt must be dropped, not delivered: the old
        clone-event path deregistered via callbacks.remove, and the
        direct entry needs the equivalent staleness guard."""
        e1 = env.timeout(0.5, value="one")
        e2 = env.timeout(0.5, value="two")
        # Both processes wake from the same event, so the attacker's
        # interrupt is issued inside the same callback cascade — after
        # the victim queued its fast-path resume, before it dispatched.
        shared = env.timeout(1.0)
        trace = []

        def victim(env):
            yield shared
            value = yield e1  # fast-path resume pending at t=1
            trace.append(("resumed", env.now, value))
            try:
                yield e2  # second fast-path entry, queued behind the interrupt
                trace.append(("not-reached", env.now))
            except Interrupt:
                trace.append(("interrupted", env.now))
                yield env.timeout(5.0)
                trace.append(("slept", env.now))

        process = env.process(victim(env))

        def attacker(env):
            yield shared
            process.interrupt()

        env.process(attacker(env))
        env.run()
        # Without the guard the stale e2 entry re-resumes the generator
        # at t=1, silently skipping the 5 s sleep.
        assert trace == [("resumed", 1.0, "one"), ("interrupted", 1.0), ("slept", 6.0)]

    def test_process_waiting_on_processed_event_is_interruptible(self, env):
        # The fast path must leave the process in an interruptible state
        # (waiting_on set): interrupt() here must not raise "process
        # cannot interrupt itself".
        early = env.timeout(0.5)

        def victim(env):
            yield env.timeout(1.0)
            try:
                yield early
                yield env.timeout(5.0)
            except Interrupt:
                return "interrupted"

        process = env.process(victim(env))

        def interrupter(env):
            yield env.timeout(1.0)
            assert process.is_alive
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert process.value == "interrupted"


class TestClosedFormSlowStart:
    def _link(self, env, rate=1e9):
        return Link(env, ConstantBandwidth(rate))

    def test_capped_flow_doubles_on_schedule(self, env):
        """cap₀=10 kB/s, RTT=1 s on an uncontended fat link: windows
        deliver 10k, 20k, 40k... bytes, so 61 440 bytes complete at
        2 + (61 440 − 30 000)/40 000 ≈ 2.786 s — the same timeline the
        pacer process produced."""
        link = self._link(env)
        flow = link.start_flow(61_440, cap=10_000.0, ramp_rtt=1.0, ramp_limit=1e12)
        env.run(until=flow.done)
        expected = 2.0 + (61_440 - 30_000) / 40_000
        assert env.now == pytest.approx(expected, rel=1e-9)

    def test_ramp_stops_at_limit(self, env):
        link = self._link(env, rate=1e9)
        flow = link.start_flow(300_000, cap=10_000.0, ramp_rtt=1.0, ramp_limit=40_000.0)
        env.run(until=flow.done)
        # Windows: 10k, 20k, then 40k/s forever: 300k total arrives at
        # 2 + (300k - 30k)/40k = 8.75 s.
        assert env.now == pytest.approx(2.0 + 270_000 / 40_000, rel=1e-9)
        assert flow.cap == pytest.approx(40_000.0)

    def test_unramped_flow_behaviour_unchanged(self, env):
        link = self._link(env, rate=1_000_000.0)
        flow = link.start_flow(500_000)
        env.run(until=flow.done)
        assert env.now == pytest.approx(0.5, rel=1e-9)

    def test_contended_ramp_only_wakes_while_cap_binds(self, env):
        """A ramping flow competing with an uncapped one: the capped
        flow's share is its cap while the cap binds; once doubled past
        the fair share, the allocation is an even split."""
        link = self._link(env, rate=100_000.0)
        capped = link.start_flow(1_000_000.0, cap=10_000.0, ramp_rtt=1.0, ramp_limit=1e9)
        open_flow = link.start_flow(1_000_000.0)
        env.run(until=2.0)
        # t in [0,1): capped 10k/s, open 90k/s; t in [1,2): 20k/80k.
        assert capped.bytes_delivered == pytest.approx(30_000.0, rel=1e-6)
        assert open_flow.bytes_delivered == pytest.approx(170_000.0, rel=1e-6)
        env.run(until=3.0)
        # t in [2,3): cap 40k < share? share is 50k -> capped at 40k.
        assert capped.bytes_delivered == pytest.approx(70_000.0, rel=1e-6)
        env.run(until=4.0)
        # cap hit 80k > 50k share: even split from t=3.
        assert capped.bytes_delivered == pytest.approx(120_000.0, rel=1e-6)

    def test_negative_ramp_rtt_rejected(self, env):
        link = self._link(env)
        with pytest.raises(ConfigError):
            link.start_flow(1000, cap=10.0, ramp_rtt=-1.0)


class TestCallbackFastLane:
    """`call_at` / `call_later`: bare callbacks, no Event machinery."""

    def test_call_later_fires_at_time(self, env):
        fired = []
        env.call_later(2.5, lambda: fired.append(env.now))
        env.run()
        assert fired == [2.5]

    def test_call_at_absolute(self, env):
        fired = []
        env.call_at(4.0, lambda: fired.append(env.now))
        env.call_at(1.0, lambda: fired.append(env.now))
        env.run()
        assert fired == [1.0, 4.0]

    def test_past_times_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ClockError):
            env.call_at(4.9, lambda: None)
        with pytest.raises(ClockError):
            env.call_later(-0.1, lambda: None)

    def test_fifo_with_events_at_same_time(self, env):
        """Fast-lane entries share the one FIFO counter with events, so
        co-timed callbacks and timeouts dispatch in schedule order."""
        order = []
        env.timeout(1.0).callbacks.append(lambda _e: order.append("timeout-1"))
        env.call_at(1.0, lambda: order.append("callback-2"))
        env.timeout(1.0).callbacks.append(lambda _e: order.append("timeout-3"))
        env.call_later(1.0, lambda: order.append("callback-4"))
        env.run()
        assert order == ["timeout-1", "callback-2", "timeout-3", "callback-4"]

    def test_callback_may_schedule_more(self, env):
        fired = []

        def chain(depth):
            fired.append((depth, env.now))
            if depth < 3:
                env.call_later(1.0, lambda: chain(depth + 1))

        env.call_later(1.0, lambda: chain(0))
        env.run()
        assert fired == [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]

    def test_step_dispatches_callbacks(self, env):
        fired = []
        env.call_later(1.0, lambda: fired.append(env.now))
        env.step()
        assert fired == [1.0] and env.now == 1.0


class TestPooledTimers:
    """`pooled_timeout`: recycled events for the per-chunk hot path."""

    def test_behaves_like_timeout(self, env):
        def proc(env):
            yield env.pooled_timeout(1.5)
            return env.now

        process = env.process(proc(env))
        env.run()
        assert process.value == 1.5

    def test_value_delivery(self, env):
        def proc(env):
            got = yield env.pooled_timeout(1.0, value="payload")
            return got

        process = env.process(proc(env))
        env.run()
        assert process.value == "payload"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ClockError):
            env.pooled_timeout(-1.0)

    def test_instances_recycle(self, env):
        """Back-to-back pooled timers run out of a bounded working set:
        the generator draws its next timer *during* the old one's
        dispatch (which recycles only afterwards), so a chain
        alternates between two instances — and never allocates a third,
        however long it runs."""
        seen = []

        def proc(env):
            for _ in range(50):
                timer = env.pooled_timeout(1.0)
                seen.append(id(timer))
                yield timer

        env.process(proc(env))
        env.run()
        assert len(set(seen)) == 2
        assert len(env._timer_pool) == 2  # both returned once the chain ends

    def test_sequential_processes_share_pool(self, env):
        def proc(env, count):
            for _ in range(count):
                yield env.pooled_timeout(0.5)

        env.process(proc(env, 30))
        env.process(proc(env, 30))
        env.run()
        # Two concurrent waiters keep at most two timers in flight plus
        # a small recycling margin — the pool never grows with the
        # number of exchanges.
        assert len(env._timer_pool) <= 3

    def test_interrupt_while_on_pooled_timer(self, env):
        """An interrupted waiter deregisters; the timer still fires
        harmlessly, recycles, and serves the next request."""
        trace = []

        def sleeper(env):
            try:
                yield env.pooled_timeout(10.0)
                trace.append("slept")
            except Interrupt:
                trace.append(("interrupted", env.now))
                yield env.pooled_timeout(1.0)
                trace.append(("resumed", env.now))

        process = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(2.0)
            process.interrupt("wake")

        env.process(interrupter(env))
        env.run()
        assert trace == [("interrupted", 2.0), ("resumed", 3.0)]

    def test_counter_parity_with_plain_timeout(self):
        """One counter bump per pooled timer — the same schedule count a
        plain Timeout produces, so dispatch order never shifts."""
        from repro.net.env import Environment

        def run(pooled):
            env = Environment()

            def proc(env):
                for _ in range(5):
                    if pooled:
                        yield env.pooled_timeout(1.0)
                    else:
                        yield env.timeout(1.0)

            env.process(proc(env))
            env.run()
            return env.scheduled_count

        assert run(pooled=True) == run(pooled=False)
