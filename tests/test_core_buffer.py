"""Playout buffer: the §4 pre-buffering / ON-OFF re-buffering machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buffer import BufferPhase, PlayoutBuffer
from repro.core.config import PlayerConfig
from repro.errors import BufferError_, ConfigError


def make_buffer(prebuffer=40.0, low=10.0, refill=20.0, duration=300.0):
    config = PlayerConfig(prebuffer_s=prebuffer, low_watermark_s=low, rebuffer_fetch_s=refill)
    return PlayoutBuffer(config, duration)


class TestPrebuffering:
    def test_starts_prebuffering_with_fetch_on(self):
        buffer = make_buffer()
        assert buffer.phase is BufferPhase.PREBUFFERING
        assert buffer.fetch_on
        assert not buffer.playing

    def test_no_playback_until_target(self):
        buffer = make_buffer()
        buffer.on_data(39.9, now=1.0)
        assert buffer.phase is BufferPhase.PREBUFFERING
        played = buffer.on_tick(1.0, now=2.0)
        assert played == 0.0

    def test_playback_starts_at_target(self):
        buffer = make_buffer()
        buffer.on_data(40.0, now=5.0)
        assert buffer.phase is BufferPhase.STEADY
        assert buffer.playing
        assert not buffer.fetch_on

    def test_the_paper_thresholds_are_defaults(self):
        config = PlayerConfig()
        assert config.prebuffer_s == 40.0
        assert config.low_watermark_s == 10.0
        assert config.rebuffer_fetch_s == 20.0


class TestSteadyAndRebuffering:
    def steady_buffer(self):
        buffer = make_buffer()
        buffer.on_data(40.0, now=0.0)
        return buffer

    def test_consumption_drains_level(self):
        buffer = self.steady_buffer()
        buffer.on_tick(5.0, now=5.0)
        assert buffer.level_s == pytest.approx(35.0)
        assert buffer.playhead_s == pytest.approx(5.0)

    def test_fetch_resumes_below_low_watermark(self):
        buffer = self.steady_buffer()
        buffer.on_tick(29.9, now=29.9)
        assert buffer.phase is BufferPhase.STEADY
        buffer.on_tick(0.2, now=30.1)
        assert buffer.phase is BufferPhase.REBUFFERING
        assert buffer.fetch_on

    def test_cycle_ends_after_fetching_target_amount(self):
        # "refills the playout buffer until 20 seconds of video data are
        # retrieved" — amount-based, not level-based (§4).
        buffer = self.steady_buffer()
        buffer.on_tick(30.5, now=30.5)
        assert buffer.phase is BufferPhase.REBUFFERING
        buffer.on_data(19.0, now=31.0)
        assert buffer.phase is BufferPhase.REBUFFERING
        buffer.on_data(1.5, now=31.5)
        assert buffer.phase is BufferPhase.STEADY
        assert not buffer.fetch_on

    def test_consumption_during_cycle_does_not_extend_it(self):
        buffer = self.steady_buffer()
        buffer.on_tick(30.5, now=30.5)
        buffer.on_data(10.0, now=31.0)
        buffer.on_tick(5.0, now=36.0)  # playing while refilling
        buffer.on_data(10.0, now=37.0)
        assert buffer.phase is BufferPhase.STEADY

    def test_playback_continues_while_rebuffering(self):
        buffer = self.steady_buffer()
        buffer.on_tick(30.5, now=30.5)
        played = buffer.on_tick(1.0, now=31.5)
        assert played == 1.0


class TestStalls:
    def test_stall_when_level_hits_zero(self):
        buffer = make_buffer()
        buffer.on_data(40.0, now=0.0)
        buffer.on_tick(40.0, now=40.0)  # drain everything, no refill
        assert buffer.phase is BufferPhase.STALLED
        assert buffer.fetch_on
        assert not buffer.playing

    def test_stall_recovers_after_cycle_target(self):
        buffer = make_buffer()
        buffer.on_data(40.0, now=0.0)
        buffer.on_tick(40.0, now=40.0)
        buffer.on_data(20.0, now=45.0)
        assert buffer.phase is BufferPhase.STEADY

    def test_no_playback_while_stalled(self):
        buffer = make_buffer()
        buffer.on_data(40.0, now=0.0)
        buffer.on_tick(40.0, now=40.0)
        assert buffer.on_tick(1.0, now=41.0) == 0.0


class TestCompletion:
    def test_download_complete_short_circuits_prebuffer(self):
        # A video shorter than the pre-buffer target must still play.
        buffer = make_buffer(duration=15.0)
        buffer.on_data(15.0, now=1.0)
        buffer.mark_download_complete(now=1.0)
        assert buffer.playing

    def test_finished_phase_stops_fetching(self):
        buffer = make_buffer()
        buffer.on_data(40.0, now=0.0)
        buffer.mark_download_complete(now=0.0)
        assert buffer.phase is BufferPhase.FINISHED
        assert not buffer.fetch_on

    def test_playback_finished_flag(self):
        buffer = make_buffer(duration=50.0)
        buffer.on_data(50.0, now=0.0)
        buffer.mark_download_complete(now=0.0)
        buffer.on_tick(50.0, now=50.0)
        assert buffer.playback_finished

    def test_playhead_never_exceeds_duration(self):
        buffer = make_buffer(duration=30.0)
        buffer.on_data(30.0, now=0.0)
        buffer.mark_download_complete(now=0.0)
        buffer.on_tick(100.0, now=100.0)
        assert buffer.playhead_s == pytest.approx(30.0)


class TestValidation:
    def test_negative_data_rejected(self):
        with pytest.raises(BufferError_):
            make_buffer().on_data(-1.0, now=0.0)

    def test_negative_tick_rejected(self):
        with pytest.raises(BufferError_):
            make_buffer().on_tick(-1.0, now=0.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigError):
            PlayoutBuffer(PlayerConfig(), 0.0)

    def test_watermark_below_prebuffer_enforced(self):
        with pytest.raises(ConfigError):
            PlayerConfig(prebuffer_s=10.0, low_watermark_s=10.0)


class TestInvariantsProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["data", "tick"]),
                st.floats(min_value=0.0, max_value=30.0),
            ),
            max_size=60,
        )
    )
    def test_level_never_negative_and_transitions_logged(self, operations):
        buffer = make_buffer()
        now = 0.0
        for kind, amount in operations:
            now += 0.1
            if kind == "data":
                buffer.on_data(amount, now)
            else:
                buffer.on_tick(amount, now)
            assert buffer.level_s >= 0.0
            assert 0.0 <= buffer.playhead_s <= buffer.video_duration_s
        # Transition log is time-ordered.
        times = [t for t, _ in buffer.transitions]
        assert times == sorted(times)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=15.0), min_size=1, max_size=40))
    def test_fetch_off_implies_enough_buffered(self, chunks):
        # Whenever the machine turns fetching OFF mid-stream, the level
        # is above the low watermark (hysteresis holds).
        buffer = make_buffer()
        now = 0.0
        for seconds in chunks:
            now += 0.5
            buffer.on_data(seconds, now)
            buffer.on_tick(0.4, now + 0.1)
            if not buffer.fetch_on and buffer.phase is BufferPhase.STEADY:
                assert buffer.level_s > buffer.config.low_watermark_s - 0.5
