"""Population campaigns: whole populations as parallel work units.

The acceptance bar mirrors the trial campaigns': a population campaign
must produce bit-identical per-policy batches — and equal rebuilt
result objects — across serial, process-pickle, and process-shm
collection for a fixed root seed.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.experiments import x6_population
from repro.errors import ConfigError
from repro.ext.multi_client import MultiClientExperiment, MultiClientResult
from repro.ext.population import (
    POPULATION_COLUMNS,
    PopulationBatch,
    PopulationCampaign,
    PopulationResult,
    population_dense_row,
)
from repro.sim.execution import ProcessEngine
from repro.sim.profiles import testbed_profile
from repro.sim.shm import OutcomeArena

#: Every collection path a population campaign can run on (factories —
#: each test gets a fresh engine).
BACKENDS = [
    pytest.param(lambda: "auto", id="auto"),
    pytest.param(lambda: ProcessEngine(2, ipc="pickle"), id="process-pickle"),
    pytest.param(lambda: ProcessEngine(2, ipc="shm"), id="process-shm"),
]


def small_experiment(seed: int = 5) -> MultiClientExperiment:
    return MultiClientExperiment(
        testbed_profile, client_count=2, video_duration_s=60.0, seed=seed
    )


class TestPopulationSpec:
    def test_specs_are_picklable(self):
        specs = small_experiment().specs_for("rotate", 3)
        assert [s.trial for s in pickle.loads(pickle.dumps(specs))] == [0, 1, 2]

    def test_replicate_seeds_are_policy_independent(self):
        experiment = small_experiment()
        static = experiment.specs_for("static", 2)
        rotate = experiment.specs_for("rotate", 2)
        assert [s.seed for s in static] == [s.seed for s in rotate]
        assert static[0].seed != static[1].seed

    def test_run_reproducible(self):
        spec = small_experiment().specs_for("rotate", 1)[0]
        a, b = spec.run(), spec.run()
        assert a == b
        assert isinstance(a, MultiClientResult)

    def test_side_record_rebuilds_exactly(self):
        spec = small_experiment().specs_for("static", 1)[0]
        result = spec.run()
        side = spec.encode_side(result)
        assert side.rebuild() == result

    def test_dense_row_through_arena_round_trips(self):
        spec = small_experiment().specs_for("rotate", 1)[0]
        result = spec.run()
        row = population_dense_row(result)
        arena = OutcomeArena.create(1, POPULATION_COLUMNS)
        try:
            spec.write_dense(arena, 0, result)
            dense = arena.read_columns()
        finally:
            arena.destroy()
        for name, _dtype in POPULATION_COLUMNS:
            assert dense[name][0] == row[name], name


class TestPopulationBatch:
    @pytest.fixture(scope="class")
    def results(self) -> list[MultiClientResult]:
        specs = small_experiment().specs_for("rotate", 3)
        return [spec.run() for spec in specs]

    def test_columns_match_per_result_rows(self, results):
        batch = PopulationBatch.from_results(results)
        assert len(batch) == 3
        for i, result in enumerate(results):
            row = population_dense_row(result)
            for name, _dtype in POPULATION_COLUMNS:
                assert getattr(batch, name)[i] == row[name], name

    def test_client_csr_layout(self, results):
        batch = PopulationBatch.from_results(results)
        expected: list[float] = []
        for i, result in enumerate(results):
            delays = result.startup_delays()
            start, end = batch.client_offsets[i], batch.client_offsets[i + 1]
            assert batch.client_startup[start:end].tolist() == delays
            expected.extend(delays)
        assert batch.startup_delays().tolist() == expected

    def test_assembly_paths_agree_bitwise(self, results):
        specs = small_experiment().specs_for("rotate", 3)
        sides = [spec.encode_side(result) for spec, result in zip(specs, results, strict=True)]
        rows = [population_dense_row(result) for result in results]
        dense = {
            name: np.asarray([row[name] for row in rows], dtype=dtype)
            for name, dtype in POPULATION_COLUMNS
        }
        rebuilt = PopulationBatch.from_dense_and_sides(dense, sides)
        assert PopulationBatch.from_results(results).column_mismatches(rebuilt) == []

    def test_column_mismatches_flags_diverged_column(self, results):
        batch = PopulationBatch.from_results(results)
        other = PopulationBatch.from_results(results)
        assert batch.column_mismatches(other) == []
        other.load_imbalance[0] += 1.0
        assert batch.column_mismatches(other) == ["load_imbalance"]

    def test_empty_batch(self):
        batch = PopulationBatch.from_results([])
        assert len(batch) == 0
        assert batch.client_offsets.tolist() == [0]

    def test_dense_row_of_empty_population_is_nan(self):
        result = MultiClientResult(policy="x")
        row = population_dense_row(result)
        assert np.isnan(row["mean_startup"]) and np.isnan(row["p95_startup"])
        assert row["completed"] == 0 and row["total_server_bytes"] == 0


class TestPopulationResult:
    def test_batch_only_result_rejected(self):
        batch = PopulationBatch.from_results([])
        with pytest.raises(ConfigError, match="result source"):
            PopulationResult("orphan", batch=batch)

    def test_policy_aliases_label(self):
        assert PopulationResult("rotate", results=[]).policy == "rotate"


class TestPopulationCampaignDeterminism:
    """Serial / process-pickle / process-shm: the same bits per policy."""

    POLICIES = ("static", "rotate")

    @pytest.fixture(scope="class")
    def serial(self) -> dict[str, PopulationResult]:
        return small_experiment().compare(self.POLICIES, replicates=2, jobs="serial")

    @pytest.mark.parametrize("make_jobs", BACKENDS)
    def test_matches_serial(self, serial, make_jobs):
        got = small_experiment().compare(
            self.POLICIES, replicates=2, jobs=make_jobs()
        )
        assert list(got) == list(self.POLICIES)
        for policy in self.POLICIES:
            assert got[policy].batch.column_mismatches(serial[policy].batch) == []
            assert got[policy].startup_delays() == serial[policy].startup_delays()
            # Materializing the lazy shm-path results must rebuild the
            # exact objects the serial path produced.
            assert got[policy].results == serial[policy].results

    def test_interleaves_policies(self):
        experiment = small_experiment()
        campaign = PopulationCampaign(jobs="serial")
        for policy in self.POLICIES:
            campaign.add(experiment.specs_for(policy, 2))
        assert len(campaign) == 4
        assert campaign.labels == list(self.POLICIES)


class TestLoadImbalanceEdgeCases:
    """The max/mean ratio under degenerate server-byte maps."""

    def test_idle_servers_count_toward_imbalance(self):
        # An unused replica is exactly the imbalance the selection
        # policy should prevent: 2 servers, one starved -> max/mean 2.
        result = MultiClientResult(policy="x", server_bytes={"a": 100, "b": 0})
        assert result.load_imbalance == pytest.approx(2.0)

    def test_all_zero_bytes_is_zero(self):
        result = MultiClientResult(policy="x", server_bytes={"a": 0, "b": 0})
        assert result.load_imbalance == 0.0

    def test_no_servers_is_zero(self):
        assert MultiClientResult(policy="x").load_imbalance == 0.0

    def test_single_server_is_perfectly_even(self):
        result = MultiClientResult(policy="x", server_bytes={"only": 512})
        assert result.load_imbalance == 1.0

    def test_even_split_is_one(self):
        result = MultiClientResult(
            policy="x", server_bytes={"a": 300, "b": 300, "c": 300}
        )
        assert result.load_imbalance == 1.0


class TestX6Shape:
    """A fast x6-shaped population pass stays in tier-1."""

    def test_x6_population_smoke(self):
        result = x6_population(replicates=1, clients=6, jobs="serial")
        assert result.experiment_id == "x6"
        raw = result.raw
        # Static selection starves replicas; rotation spreads the load.
        assert raw["static"]["imbalance_mean"] > 2.0
        assert raw["rotate"]["imbalance_mean"] < raw["static"]["imbalance_mean"]
        for policy in raw:
            assert raw[policy]["completed"] == raw[policy]["sessions"], policy
        assert "EXP-X6" in result.rendered
