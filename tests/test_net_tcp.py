"""TCP connection model: handshakes, request timing, slow start, resets."""

import pytest

from repro.errors import ConfigError, ConnectionClosedError, LinkDownError, NetworkError
from repro.net.bandwidth import ConstantBandwidth
from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.net.tcp import TCPConnection, TCPParams
from repro.net.tls import TLSParams
from repro.units import MB, mbit


def build(env, mbps=80.0, rtt=0.020, params=None):
    link = Link(env, ConstantBandwidth(mbit(mbps)))
    latency = ConstantLatency(rtt / 2.0)
    return TCPConnection(env, link, latency, params=params), link


def run_process(env, generator):
    process = env.process(generator)
    env.run(process)
    return process.value


class TestHandshakes:
    def test_connect_costs_one_rtt(self, env):
        conn, _ = build(env, rtt=0.030)

        def main(env):
            yield env.process(conn.connect())

        run_process(env, main(env))
        assert env.now == pytest.approx(0.030)
        assert conn.connected

    def test_tls_full_handshake_two_rtt_plus_deltas(self, env):
        conn, _ = build(env, rtt=0.030)
        tls = TLSParams(delta1=0.005, delta2=0.007)

        def main(env):
            yield env.process(conn.connect())
            yield env.process(conn.secure_handshake(tls))

        run_process(env, main(env))
        assert env.now == pytest.approx(0.030 + 2 * 0.030 + 0.012)
        assert conn.secure

    def test_tls_resumption_single_rtt(self, env):
        conn, _ = build(env, rtt=0.030)
        tls = TLSParams(delta1=0.005, delta2=0.007, resumption=True)

        def main(env):
            yield env.process(conn.connect())
            yield env.process(conn.secure_handshake(tls, resumed=True))

        run_process(env, main(env))
        assert env.now == pytest.approx(0.030 + 0.030 + 0.007)

    def test_request_before_connect_rejected(self, env):
        conn, _ = build(env)

        def main(env):
            with pytest.raises(ConnectionClosedError):
                yield env.process(conn.exchange(1000))

        run_process(env, main(env))


class TestExchange:
    def test_first_byte_after_one_rtt_plus_server_delay(self, env):
        conn, _ = build(env, rtt=0.020)

        def main(env):
            yield env.process(conn.connect())
            result = yield env.process(conn.exchange(100_000, server_delay=0.005))
            return result

        result = run_process(env, main(env))
        assert result.first_byte_at - result.requested_at == pytest.approx(0.025)
        assert result.completed_at > result.first_byte_at

    def test_throughput_definition_matches_paper(self, env):
        # w_i = S_i / T_i where T_i is request-to-completion (§3.3).
        conn, _ = build(env)

        def main(env):
            yield env.process(conn.connect())
            return (yield env.process(conn.exchange(1 * MB)))

        result = run_process(env, main(env))
        assert result.throughput == pytest.approx(result.num_bytes / result.duration)

    def test_slow_start_makes_small_transfers_slow(self, env):
        # Effective throughput of a small chunk is far below link rate;
        # a big chunk amortizes slow start.  This is the Fig. 3 effect.
        conn, _ = build(env, mbps=80.0, rtt=0.040)
        results = {}

        def main(env):
            yield env.process(conn.connect())
            small = yield env.process(conn.exchange(16 * 1024))
            # Idle long enough to force a window reset.
            yield env.timeout(5.0)
            big = yield env.process(conn.exchange(4 * MB))
            results["small"] = small
            results["big"] = big

        run_process(env, main(env))
        link_rate = mbit(80.0)
        assert results["small"].throughput < 0.25 * link_rate
        assert results["big"].throughput > 0.6 * link_rate

    def test_window_persists_across_back_to_back_requests(self, env):
        conn, _ = build(env, mbps=80.0, rtt=0.040)
        results = []

        def main(env):
            yield env.process(conn.connect())
            for _ in range(2):
                result = yield env.process(conn.exchange(512 * 1024))
                results.append(result)

        run_process(env, main(env))
        # Second transfer starts with the warmed window: faster.
        assert results[1].duration < results[0].duration

    def test_idle_reset_cools_the_window(self, env):
        params = TCPParams(idle_reset_after=0.5)
        conn, _ = build(env, mbps=80.0, rtt=0.040, params=params)
        results = []

        def main(env):
            yield env.process(conn.connect())
            results.append((yield env.process(conn.exchange(512 * 1024))))
            results.append((yield env.process(conn.exchange(512 * 1024))))
            yield env.timeout(3.0)  # OFF period > idle_reset_after
            results.append((yield env.process(conn.exchange(512 * 1024))))

        run_process(env, main(env))
        warm = results[1].duration
        cold = results[2].duration
        assert cold > warm  # the ON/OFF cycle pays a fresh ramp-up

    def test_concurrent_exchange_rejected(self, env):
        conn, _ = build(env)

        def second(env):
            yield env.timeout(0.025)
            with pytest.raises(ConnectionClosedError):
                yield env.process(conn.exchange(1000))

        def main(env):
            yield env.process(conn.connect())
            env.process(second(env))
            yield env.process(conn.exchange(10 * MB))

        run_process(env, main(env))

    def test_invalid_byte_count_rejected(self, env):
        conn, _ = build(env)

        def main(env):
            yield env.process(conn.connect())
            with pytest.raises(ConfigError):
                yield env.process(conn.exchange(0))

        run_process(env, main(env))


class TestFailures:
    def test_reset_mid_transfer_raises_in_waiter(self, env):
        conn, _ = build(env, mbps=1.0)

        def killer(env):
            yield env.timeout(0.5)
            conn.reset()

        def main(env):
            yield env.process(conn.connect())
            env.process(killer(env))
            with pytest.raises(NetworkError):
                yield env.process(conn.exchange(10 * MB))
            return "handled"

        assert run_process(env, main(env)) == "handled"

    def test_link_down_mid_transfer(self, env):
        conn, link = build(env, mbps=1.0)

        def outage(env):
            yield env.timeout(0.5)
            link.set_down(True)
            link.reset_flows(LinkDownError("walked away from AP"))

        def main(env):
            yield env.process(conn.connect())
            env.process(outage(env))
            with pytest.raises(NetworkError):
                yield env.process(conn.exchange(10 * MB))
            return "handled"

        assert run_process(env, main(env)) == "handled"

    def test_connect_on_down_link_rejected(self, env):
        conn, link = build(env)
        link.set_down(True)

        def main(env):
            with pytest.raises(LinkDownError):
                yield env.process(conn.connect())

        run_process(env, main(env))

    def test_close_is_idempotent(self, env):
        conn, _ = build(env)
        conn.close()
        conn.close()
        assert conn.closed

    def test_accounting(self, env):
        conn, _ = build(env)

        def main(env):
            yield env.process(conn.connect())
            yield env.process(conn.exchange(100_000))
            yield env.process(conn.exchange(200_000))

        run_process(env, main(env))
        assert conn.bytes_received == 300_000
        assert conn.request_count == 2
