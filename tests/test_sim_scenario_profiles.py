"""Scenario construction and network profiles."""

import pytest

from repro.errors import ConfigError
from repro.rng import RngFactory
from repro.sim.profiles import (
    InterfaceProfile,
    OutageEvent,
    mobility_profile,
    testbed_profile,
    youtube_profile,
)
from repro.sim.scenario import LTE_NET, WIFI_NET, Scenario, ScenarioConfig
from repro.units import mbit


class TestProfiles:
    def test_theta_in_paper_band(self):
        # §6: LTE RTTs were 2–3x WiFi.
        for profile in (testbed_profile(), youtube_profile()):
            assert 2.0 <= profile.theta <= 3.0

    def test_wifi_faster_than_lte(self):
        for profile in (testbed_profile(), youtube_profile()):
            assert profile.wifi.mean_mbps > profile.lte.mean_mbps

    def test_youtube_profile_burstier(self):
        testbed, youtube = testbed_profile(), youtube_profile()
        assert youtube.wifi.sigma > testbed.wifi.sigma
        assert youtube.wifi.markov_states and not testbed.wifi.markov_states

    def test_mobility_profile_carries_outage(self):
        profile = mobility_profile(wifi_down_at=5.0, wifi_up_at=15.0)
        assert profile.outages == (OutageEvent("wifi", 5.0, 15.0),)

    def test_outage_window_validated(self):
        with pytest.raises(ConfigError):
            OutageEvent("wifi", 10.0, 5.0)

    def test_bandwidth_process_mean_matches(self):
        profile = testbed_profile()
        process = profile.wifi.bandwidth_process(RngFactory(1), "wifi")
        assert process.mean_rate == pytest.approx(mbit(profile.wifi.mean_mbps), rel=1e-6)

    def test_interface_profile_validation(self):
        with pytest.raises(ConfigError):
            InterfaceProfile(kind="wifi", mean_mbps=0.0, sigma=0.1, rho=0.5, one_way_delay_s=0.01)

    def test_with_override(self):
        profile = testbed_profile().with_(name="custom")
        assert profile.name == "custom"
        assert profile.wifi == testbed_profile().wifi


class TestScenario:
    def test_builds_two_networks_of_servers(self):
        scenario = Scenario(testbed_profile(), seed=1)
        for network_id in (WIFI_NET, LTE_NET):
            pool = scenario.deployment.pools[network_id]
            assert len(pool.proxy_hosts) == 1
            assert len(pool.video_hosts) == testbed_profile().video_servers_per_network

    def test_dns_answers_per_network(self):
        scenario = Scenario(testbed_profile(), seed=1)
        wifi = scenario.resolver.resolve_now("www.youtube.example", WIFI_NET)
        lte = scenario.resolver.resolve_now("www.youtube.example", LTE_NET)
        assert wifi != lte

    def test_video_in_catalog(self):
        scenario = Scenario(
            testbed_profile(), seed=1, config=ScenarioConfig(video_id="abcdefghijk")
        )
        assert "abcdefghijk" in scenario.catalog

    def test_iface_for_order(self):
        scenario = Scenario(testbed_profile(), seed=1)
        assert scenario.iface_for(0).kind == "wifi"
        assert scenario.iface_for(1).kind == "lte"

    def test_path_specs(self):
        scenario = Scenario(testbed_profile(), seed=1)
        assert scenario.path_specs(1) == [("wlan0", WIFI_NET)]
        assert len(scenario.path_specs(2)) == 2

    def test_outage_toggles_interface(self):
        profile = mobility_profile(wifi_down_at=1.0, wifi_up_at=2.0)
        scenario = Scenario(profile, seed=1)
        assert scenario.wifi.is_up
        scenario.env.run(until=1.5)
        assert not scenario.wifi.is_up
        scenario.env.run(until=2.5)
        assert scenario.wifi.is_up

    def test_duration_validated(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(video_duration_s=0.0)

    def test_same_seed_same_world(self):
        a = Scenario(youtube_profile(), seed=4)
        b = Scenario(youtube_profile(), seed=4)
        # Stochastic components draw identically.
        assert a.rng_factory.generator("x").random() == b.rng_factory.generator("x").random()
