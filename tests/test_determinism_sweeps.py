"""Cross-backend determinism for the experiment sweeps.

PR-1/PR-2 pinned fig3/fig5/table1 to the serial path; this extends the
wall to the x1 (robustness: scenario hooks, mixed profiles and root
seeds in one campaign) and x2 (source diversity: walks rebuilt outcome
objects for ``server_bytes``) experiments, parametrized over every
collection path: serial, process-pickle, and process-shm.  "Identical"
means the rendered panel *and* the raw dict — the same bytes a paper
figure is generated from.

The quick minis run in tier-1; paper-scale sweeps (full fig3 slices,
deeper trial counts) carry the ``slow`` marker and run via
``pytest -m slow``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    fig3_scheduler_sweep,
    fig5_rebuffer,
    table1_traffic_fraction,
    x1_robustness,
    x2_source_diversity,
    x6_population,
)
from repro.sim.execution import ProcessEngine
from repro.study import run_experiment
from repro.units import KB

#: jobs values for each collection path (engine instances pass through
#: ``resolve_engine``); factories so each run gets a fresh engine.
PARALLEL_BACKENDS = [
    pytest.param(lambda: ProcessEngine(2, ipc="pickle"), id="process-pickle"),
    pytest.param(lambda: ProcessEngine(2, ipc="shm"), id="process-shm"),
]


def _assert_experiments_identical(got, reference):
    assert got.experiment_id == reference.experiment_id
    assert got.rendered == reference.rendered
    assert got.raw == reference.raw


class TestX1X2CrossBackend:
    """x1/x2 byte-identical over serial / process-pickle / process-shm."""

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x1_robustness_matches_serial(self, make_jobs):
        reference = x1_robustness(trials=2, jobs="serial")
        _assert_experiments_identical(
            x1_robustness(trials=2, jobs=make_jobs()), reference
        )

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x2_source_diversity_matches_serial(self, make_jobs):
        """x2 is the outcome-object consumer: its per-server byte
        accounting walks ``result.outcomes``, so this also pins the
        shm path's lazy outcome rebuild to the serial objects."""
        reference = x2_source_diversity(trials=2, jobs="serial")
        _assert_experiments_identical(
            x2_source_diversity(trials=2, jobs=make_jobs()), reference
        )


@pytest.mark.slow
class TestPaperScaleSweeps:
    """Deeper sweeps than tier-1 affords, same acceptance bar."""

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_fig3_slice_matches_serial(self, make_jobs):
        kwargs = dict(
            trials=10,
            prebuffers=(20.0, 40.0),
            chunks=(64 * KB, 256 * KB),
            schedulers=("harmonic", "ewma", "ratio"),
        )
        reference = fig3_scheduler_sweep(jobs="serial", **kwargs)
        _assert_experiments_identical(
            fig3_scheduler_sweep(jobs=make_jobs(), **kwargs), reference
        )

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_fig5_matches_serial(self, make_jobs):
        kwargs = dict(trials=5, rebuffers=(20.0, 40.0), target_cycles=2)
        reference = fig5_rebuffer(jobs="serial", **kwargs)
        _assert_experiments_identical(
            fig5_rebuffer(jobs=make_jobs(), **kwargs), reference
        )

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_table1_matches_serial(self, make_jobs):
        kwargs = dict(trials=5, durations=(20.0, 40.0, 60.0))
        reference = table1_traffic_fraction(jobs="serial", **kwargs)
        _assert_experiments_identical(
            table1_traffic_fraction(jobs=make_jobs(), **kwargs), reference
        )

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x1_paper_trials_matches_serial(self, make_jobs):
        reference = x1_robustness(trials=10, jobs="serial")
        _assert_experiments_identical(
            x1_robustness(trials=10, jobs=make_jobs()), reference
        )

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x2_paper_trials_matches_serial(self, make_jobs):
        reference = x2_source_diversity(trials=10, jobs="serial")
        _assert_experiments_identical(
            x2_source_diversity(trials=10, jobs=make_jobs()), reference
        )

    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_x6_population_sweep_matches_serial(self, make_jobs):
        """The population campaign at flash-crowd scale: whole
        multi-client populations as work units, per-policy batches
        assembled from the population arena columns on the shm path.
        The rendered panel and raw dict come entirely off the batch,
        so equality here is batch-level bit equality."""
        kwargs = dict(replicates=10, clients=12)
        reference = x6_population(jobs="serial", **kwargs)
        _assert_experiments_identical(
            x6_population(jobs=make_jobs(), **kwargs), reference
        )


# ---------------------------------------------------------------------------
# Event-kernel equality: REPRO_KERNEL must never change a single byte
# ---------------------------------------------------------------------------

#: Small per-id overrides so the all-ten wall stays affordable; the
#: acceptance bar (byte equality) is scale-independent.
_MINI_PARAMS: dict[str, dict] = {
    "fig1": {},
    "fig2": {"trials": 2},
    "fig3": {"trials": 2, "prebuffers": (20.0,), "chunks": (64 * KB, 256 * KB)},
    "fig4": {"trials": 2, "prebuffers": (20.0, 40.0)},
    "fig5": {"trials": 2, "rebuffers": (20.0,), "target_cycles": 2},
    "table1": {"trials": 2, "durations": (20.0, 40.0)},
    "x1": {"trials": 2},
    "x2": {"trials": 2},
    "x3": {"samples": 200},
    "x6": {"replicates": 2, "clients": 4},
}

#: Kernels under test: the seed heapq is the reference; "compiled"
#: resolves to the C core when built and degrades to the pure-python
#: calendar otherwise (resolve_kernel semantics), so the leg is
#: meaningful either way.
SWEEP_KERNELS = ("calendar", "compiled")


def _run_mini(experiment_id, jobs, kernel=None):
    return run_experiment(experiment_id, jobs=jobs, kernel=kernel, **_MINI_PARAMS[experiment_id])


class TestKernelEquality:
    """fig3/fig5/table1 minis: calendar == heapq, serial and process."""

    @pytest.mark.parametrize("experiment_id", ["fig3", "fig5", "table1"])
    @pytest.mark.parametrize("kernel", SWEEP_KERNELS)
    def test_mini_serial(self, experiment_id, kernel):
        reference = _run_mini(experiment_id, jobs="serial", kernel="heapq")
        _assert_experiments_identical(
            _run_mini(experiment_id, jobs="serial", kernel=kernel), reference
        )

    @pytest.mark.parametrize("experiment_id", ["fig3"])
    def test_mini_process(self, experiment_id):
        """The kernel pin must reach (possibly pre-forked, cached) pool
        workers: the engines ship it per task, not via the environ."""
        reference = _run_mini(experiment_id, jobs="serial", kernel="heapq")
        _assert_experiments_identical(
            _run_mini(experiment_id, jobs=ProcessEngine(2, ipc="shm"), kernel="calendar"),
            reference,
        )


@pytest.mark.slow
class TestKernelEqualityAllExperiments:
    """Every registered experiment, byte-identical across kernels on
    both the serial and process backends."""

    @pytest.mark.parametrize("experiment_id", sorted(_MINI_PARAMS))
    @pytest.mark.parametrize("kernel", SWEEP_KERNELS)
    def test_serial(self, experiment_id, kernel):
        reference = _run_mini(experiment_id, jobs="serial", kernel="heapq")
        _assert_experiments_identical(
            _run_mini(experiment_id, jobs="serial", kernel=kernel), reference
        )

    @pytest.mark.parametrize("experiment_id", sorted(_MINI_PARAMS))
    @pytest.mark.parametrize("make_jobs", PARALLEL_BACKENDS)
    def test_process(self, experiment_id, make_jobs):
        reference = _run_mini(experiment_id, jobs="serial", kernel="heapq")
        _assert_experiments_identical(
            _run_mini(experiment_id, jobs=make_jobs(), kernel="calendar"), reference
        )
