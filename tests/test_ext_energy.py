"""Energy model (EXP-X7 substrate)."""

import pytest

from repro.core.metrics import QoEMetrics
from repro.errors import ConfigError
from repro.ext.energy import (
    EnergyModel,
    InterfaceEnergyProfile,
    LTE_ENERGY,
    WIFI_ENERGY,
)


def metrics_with(path_bytes: dict[int, int], active: dict[int, float], cycles: int = 0):
    metrics = QoEMetrics()
    for path_id, num_bytes in path_bytes.items():
        metrics.record_chunk(
            path_id, num_bytes, prebuffering=True, duration=active.get(path_id, 0.0)
        )
    for i in range(cycles):
        metrics.begin_rebuffer_cycle(10.0 * i, 9.0)
        metrics.end_rebuffer_cycle(10.0 * i + 3.0)
    return metrics


class TestProfiles:
    def test_lte_tail_dominates_wifi(self):
        assert LTE_ENERGY.tail_time_s > 10 * WIFI_ENERGY.tail_time_s

    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigError):
            InterfaceEnergyProfile("x", -1.0, 0.0, 0.0, 0.0)


class TestEnergyModel:
    def test_active_component(self):
        metrics = metrics_with({0: 1024 * 1024}, {0: 10.0})
        report = EnergyModel({0: WIFI_ENERGY}).report(metrics)
        breakdown = report.breakdown_by_path[0]
        assert breakdown["active"] == pytest.approx(WIFI_ENERGY.active_power_w * 10.0)
        assert breakdown["data"] == pytest.approx(WIFI_ENERGY.joules_per_mb)

    def test_tail_charged_per_burst(self):
        no_cycles = metrics_with({1: 1024}, {1: 1.0}, cycles=0)
        with_cycles = metrics_with({1: 1024}, {1: 1.0}, cycles=3)
        model = EnergyModel({1: LTE_ENERGY})
        delta = (
            model.report(with_cycles).joules_by_path[1]
            - model.report(no_cycles).joules_by_path[1]
        )
        assert delta == pytest.approx(3 * LTE_ENERGY.tail_power_w * LTE_ENERGY.tail_time_s)

    def test_idle_path_costs_nothing(self):
        metrics = metrics_with({0: 2048}, {0: 1.0})
        report = EnergyModel().report(metrics)  # default includes LTE
        assert 1 not in report.joules_by_path

    def test_total_is_sum(self):
        metrics = metrics_with({0: 1024, 1: 1024}, {0: 1.0, 1: 1.0})
        report = EnergyModel().report(metrics)
        assert report.total_joules == pytest.approx(sum(report.joules_by_path.values()))

    def test_dual_radio_costs_more_than_wifi_alone(self):
        metrics = metrics_with({0: 10 * 1024 * 1024, 1: 6 * 1024 * 1024}, {0: 8.0, 1: 8.0})
        dual = EnergyModel().report(metrics).total_joules
        wifi_only_metrics = metrics_with({0: 16 * 1024 * 1024}, {0: 13.0})
        wifi_only = EnergyModel({0: WIFI_ENERGY}).report(wifi_only_metrics).total_joules
        assert dual > wifi_only

    def test_joules_per_megabyte(self):
        metrics = metrics_with({0: 2 * 1024 * 1024}, {0: 2.0})
        report = EnergyModel({0: WIFI_ENERGY}).report(metrics)
        assert report.joules_per_megabyte(metrics) == pytest.approx(
            report.total_joules / 2.0
        )

    def test_joules_per_megabyte_empty_session_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel().report(QoEMetrics()).joules_per_megabyte(QoEMetrics())
