"""Request/Response model: construction, wire sizes, conveniences."""

import pytest

from repro.errors import HTTPParseError
from repro.http.messages import Request, Response
from repro.http.ranges import ByteRange


class TestRequest:
    def test_get_builder_sets_expected_headers(self):
        request = Request.get("/video", "cdn.example", ByteRange(0, 65536))
        assert request.headers["Host"] == "cdn.example"
        assert request.headers["Range"] == "bytes=0-65535"
        assert request.headers["Connection"] == "keep-alive"

    def test_get_without_range(self):
        request = Request.get("/video", "cdn.example")
        assert "Range" not in request.headers

    def test_extra_headers_underscore_to_dash(self):
        request = Request.get("/x", "h", X_Client_Address="1.2.3.4")
        assert request.headers["X-Client-Address"] == "1.2.3.4"

    def test_query_parsing(self):
        request = Request("GET", "/videoplayback?v=abc&itag=22&empty")
        assert request.query == {"v": "abc", "itag": "22", "empty": ""}
        assert request.path == "/videoplayback"

    def test_no_query(self):
        assert Request("GET", "/plain").query == {}

    def test_unsupported_method_rejected(self):
        with pytest.raises(HTTPParseError):
            Request("BREW", "/coffee")

    def test_non_origin_form_rejected(self):
        with pytest.raises(HTTPParseError):
            Request("GET", "http://absolute.example/x")

    def test_body_sets_content_length(self):
        request = Request("POST", "/submit", body=b"hello")
        assert request.headers["Content-Length"] == "5"

    def test_wire_size_matches_encode(self):
        request = Request.get("/videoplayback?v=abc", "cdn.example", ByteRange(0, 100))
        assert request.wire_size() == len(request.encode())

    def test_encode_starts_with_request_line(self):
        request = Request("GET", "/x")
        assert request.encode().startswith(b"GET /x HTTP/1.1\r\n")


class TestResponse:
    def test_json_roundtrip(self):
        response = Response.json({"a": 1, "b": [1, 2]})
        assert response.status == 200
        assert response.parsed_json() == {"a": 1, "b": [1, 2]}
        assert response.headers["Content-Type"] == "application/json"

    def test_bad_json_raises(self):
        response = Response(200, body=b"not json{")
        with pytest.raises(HTTPParseError):
            response.parsed_json()

    def test_partial_content_virtual_body(self):
        response = Response.partial_content(ByteRange(1024, 5120), 100_000)
        assert response.status == 206
        assert response.body_size == 4096
        assert response.body == b""
        assert response.headers["Content-Range"] == "bytes 1024-5119/100000"
        assert response.headers["Content-Length"] == "4096"

    def test_error_builder(self):
        response = Response.error(404, "gone")
        assert response.status == 404
        assert not response.ok
        assert response.body == b"gone"

    def test_reason_from_table(self):
        assert Response(206).reason == "Partial Content"

    def test_wire_size_includes_virtual_body(self):
        response = Response.partial_content(ByteRange(0, 4096), 100_000)
        assert response.wire_size() == response.header_wire_size() + 4096

    def test_header_wire_size_matches_real_encode(self):
        response = Response(200, body=b"payload")
        encoded = response.encode()
        assert len(encoded) == response.header_wire_size() + 7

    def test_encode_with_virtual_body_mismatch_rejected(self):
        response = Response(200, body=b"abc", body_size=3)
        response.body_size = 10  # corrupt it
        with pytest.raises(HTTPParseError):
            response.encode()

    def test_negative_body_size_rejected(self):
        with pytest.raises(HTTPParseError):
            Response(200, body_size=-1)

    def test_ok_range(self):
        assert Response(204).ok
        assert not Response(500).ok
