"""The sqlite study broker: leases, retries, quarantine, cache, restart.

Direct (HTTP-free) tests of :class:`repro.serve.broker.Broker` — the
queue's correctness argument lives here: lease expiry requeues, bounded
retries quarantine, completion is first-commit-wins with full archive
validation, the sqlite file survives a broker restart with in-flight
leases intact, and a warm cache turns a resubmission into zero work.
"""

from contextlib import suppress

import pytest

from repro.errors import ConfigError, ServiceError
from repro.serve.broker import Broker
from repro.serve.cells import cell_archive, execute_cell, load_cell_archive
from repro.serve.worker import run_worker
from repro.sim.execution import SerialEngine
from repro.study.cache import StudyCache


class Clock:
    """An injectable wall clock the tests advance by hand."""

    def __init__(self, t: float = 1_000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def grid_payload(trials: int = 1, seeds: tuple = (2014, 2015)) -> dict:
    return {
        "experiment": "fig2",
        "params": {"trials": trials},
        "axes": {"seed": list(seeds)},
    }


def single_payload(seed: int = 2014) -> dict:
    return {"experiment": "fig2", "params": {"trials": 1, "seed": seed}, "axes": {}}


@pytest.fixture(scope="module")
def archives() -> dict:
    """Real fig2 cell archives, one per seed, computed once per module."""
    out = {}
    for seed in (2014, 2015):
        cell = execute_cell("fig2", {"trials": 1, "seed": seed}, engine=SerialEngine())
        out[seed] = cell_archive("fig2", cell)
    return out


@pytest.fixture
def make_broker(tmp_path):
    brokers = []

    def factory(name: str = "queue.sqlite3", **kwargs) -> Broker:
        broker = Broker(tmp_path / name, **kwargs)
        brokers.append(broker)
        return broker

    yield factory
    for broker in brokers:
        with suppress(Exception):
            broker.close()


def complete_lease(broker: Broker, lease: dict, archives: dict, worker: str = "w"):
    """Commit the right canned archive for a fig2 lease."""
    manifest, npz = archives[lease["params"]["seed"]]
    return broker.complete(
        lease["job_id"],
        lease["cell"],
        manifest,
        npz,
        lease_id=lease["lease_id"],
        worker=worker,
    )


class TestSubmit:
    def test_expands_grid_into_pending_cells(self, make_broker):
        broker = make_broker()
        summary = broker.submit(grid_payload())
        assert summary["cells"] == 2
        assert summary["cached"] == 0
        assert summary["units"] > 0
        status = broker.status(summary["job_id"])
        assert status["state"] == "running"
        assert status["counts"] == {"pending": 2}
        assert [info["cell"] for info in status["cells"]] == [0, 1]
        # The broker re-expanded the grid itself: each cell carries its
        # fully resolved params, product order.
        lease = broker.lease("w0")
        assert lease["cell"] == 0
        assert lease["params"]["seed"] == 2014
        assert lease["params"]["trials"] == 1

    def test_rejects_malformed_submissions(self, make_broker):
        broker = make_broker()
        with pytest.raises(ConfigError):
            broker.submit({"params": {}})  # no experiment id
        with pytest.raises(ConfigError):
            broker.submit({"experiment": "no-such-experiment"})
        with pytest.raises(ConfigError):
            broker.submit({"experiment": "fig2", "params": {"bogus_knob": 1}})
        with pytest.raises(ConfigError):
            broker.submit({"experiment": "fig2", "params": [1, 2]})

    def test_validation_happens_before_anything_queues(self, make_broker):
        broker = make_broker()
        with pytest.raises(ConfigError):
            broker.submit({"experiment": "fig2", "params": {}, "axes": {"seed": []}})
        assert broker.lease("w0") is None


class TestLeaseLifecycle:
    def test_roundtrip_lease_complete_result(self, make_broker, archives):
        broker = make_broker(log=print)
        job = broker.submit(single_payload())["job_id"]
        lease = broker.lease("w0")
        assert lease["job_id"] == job
        assert lease["lease_timeout"] == broker.lease_timeout
        response = complete_lease(broker, lease, archives, worker="w0")
        assert response == {"accepted": True, "reason": "stored"}
        status = broker.status(job)
        assert status["state"] == "done"
        assert status["cells"][0]["worker"] == "w0"
        manifest, npz = broker.result(job, 0)
        assert (manifest, npz) == archives[2014]
        # The stored archive round-trips through strict validation.
        assert load_cell_archive(manifest, npz).only().params["seed"] == 2014

    def test_empty_queue_leases_none(self, make_broker):
        assert make_broker().lease("w0") is None

    def test_heartbeat_extends_the_deadline(self, make_broker):
        clock = Clock()
        broker = make_broker(lease_timeout=10.0, clock=clock)
        broker.submit(single_payload())
        lease = broker.lease("w0")
        clock.advance(8.0)
        assert broker.heartbeat(lease["lease_id"]) is True
        clock.advance(8.0)  # past the original deadline, not the extended one
        assert broker.requeue_expired() == 0
        clock.advance(3.0)
        assert broker.requeue_expired() == 1
        assert broker.heartbeat(lease["lease_id"]) is False

    def test_expired_lease_requeues_and_releases(self, make_broker):
        clock = Clock()
        log: list[str] = []
        broker = make_broker(lease_timeout=5.0, clock=clock, log=log.append)
        broker.submit(single_payload())
        first = broker.lease("w0")
        clock.advance(6.0)
        second = broker.lease("w1")  # expiry scan runs lazily in lease()
        assert second is not None
        assert second["cell"] == first["cell"]
        assert second["lease_id"] != first["lease_id"]
        assert any("requeued" in line and "lease expired" in line for line in log)
        status = broker.status(second["job_id"])
        assert status["cells"][0]["attempts"] == 2

    def test_quarantine_after_max_attempts(self, make_broker):
        clock = Clock()
        log: list[str] = []
        broker = make_broker(lease_timeout=5.0, max_attempts=2, clock=clock, log=log.append)
        job = broker.submit(single_payload())["job_id"]
        for _ in range(2):
            assert broker.lease("w0") is not None
            clock.advance(6.0)
        assert broker.lease("w0") is None  # quarantined, not re-leased
        status = broker.status(job)
        assert status["state"] == "failed"
        assert "lease expired" in status["cells"][0]["error"]
        assert any("quarantined" in line for line in log)
        with pytest.raises(ServiceError):
            broker.result(job, 0)


class TestCompletion:
    def test_duplicate_completion_first_commit_wins(self, make_broker, archives):
        broker = make_broker()
        job = broker.submit(single_payload())["job_id"]
        lease = broker.lease("w0")
        assert complete_lease(broker, lease, archives, worker="w0")["accepted"]
        duplicate = complete_lease(broker, lease, archives, worker="w1")
        assert duplicate == {"accepted": False, "reason": "already-complete"}
        assert broker.status(job)["cells"][0]["worker"] == "w0"

    def test_invalid_archive_charges_the_attempt(self, make_broker):
        broker = make_broker(max_attempts=1)
        job = broker.submit(single_payload())["job_id"]
        lease = broker.lease("w0")
        response = broker.complete(job, lease["cell"], "not a manifest", b"junk", worker="w0")
        assert response["accepted"] is False
        assert response["reason"].startswith("invalid-archive")
        status = broker.status(job)
        assert status["state"] == "failed"  # max_attempts=1: straight to jail
        assert "invalid result archive" in status["cells"][0]["error"]

    def test_archive_for_the_wrong_cell_is_rejected(self, make_broker, archives):
        broker = make_broker()
        job = broker.submit(single_payload(seed=2014))["job_id"]
        broker.lease("w0")
        manifest, npz = archives[2015]  # valid archive, wrong params
        response = broker.complete(job, 0, manifest, npz, worker="w0")
        assert response["accepted"] is False
        assert "do not match" in response["reason"]

    def test_completion_without_a_lease_rescues_quarantine(self, make_broker, archives):
        broker = make_broker(max_attempts=1)
        job = broker.submit(single_payload())["job_id"]
        lease = broker.lease("w0")
        broker.fail(lease["lease_id"], "controlled crash")
        assert broker.status(job)["state"] == "failed"
        # Determinism: a valid archive is THE result, lease or no lease.
        manifest, npz = archives[2014]
        assert broker.complete(job, 0, manifest, npz, worker="late")["accepted"]
        assert broker.status(job)["state"] == "done"

    def test_unknown_cell_raises(self, make_broker, archives):
        broker = make_broker()
        manifest, npz = archives[2014]
        with pytest.raises(ServiceError):
            broker.complete("nope", 0, manifest, npz)


class TestFail:
    def test_fail_requeues_then_quarantines(self, make_broker):
        broker = make_broker(max_attempts=2)
        job = broker.submit(single_payload())["job_id"]
        first = broker.fail(broker.lease("w0")["lease_id"], "crash 1")
        assert first == {"accepted": True, "requeued": True, "reason": "requeued"}
        second = broker.fail(broker.lease("w0")["lease_id"], "crash 2")
        assert second == {
            "accepted": True,
            "requeued": False,
            "reason": "quarantined",
        }
        assert broker.status(job)["cells"][0]["error"] == "crash 2"

    def test_unknown_lease_is_refused(self, make_broker):
        response = make_broker().fail("deadbeef", "whatever")
        assert response["accepted"] is False
        assert response["reason"] == "unknown-lease"


class TestStatusAndResult:
    def test_unknown_job_raises(self, make_broker):
        with pytest.raises(ServiceError):
            make_broker().status("nope")

    def test_result_before_done_raises(self, make_broker):
        broker = make_broker()
        job = broker.submit(single_payload())["job_id"]
        with pytest.raises(ServiceError):
            broker.result(job, 0)
        with pytest.raises(ServiceError):
            broker.result(job, 99)


class TestRestart:
    def test_queue_and_leases_survive_a_broker_restart(self, make_broker, archives):
        clock = Clock()
        first = make_broker("shared.sqlite3", lease_timeout=5.0, clock=clock)
        job = first.submit(single_payload())["job_id"]
        stale = first.lease("w0")
        first.close()

        second = make_broker("shared.sqlite3", lease_timeout=5.0, clock=clock)
        assert second.status(job)["cells"][0]["state"] == "leased"
        clock.advance(6.0)
        release = second.lease("w1")
        assert release is not None and release["cell"] == 0
        # The pre-restart worker finally reports in: its lease is stale
        # but its archive is valid, so first-commit-wins accepts it.
        assert complete_lease(second, stale, archives, worker="w0")["accepted"]
        assert second.status(job)["state"] == "done"


class TestCacheIntegration:
    def test_warm_cache_submits_zero_work_units(self, tmp_path, archives):
        cache = StudyCache(tmp_path / "cache")
        first = Broker(tmp_path / "a.sqlite3", cache=cache)
        try:
            job = first.submit(grid_payload())["job_id"]
            # Drain with the real worker loop, HTTP-free (the broker and
            # the client expose the same surface by design).
            drained = run_worker(first, jobs="serial", once=True, poll=0.01, worker_id="w0")
            assert drained == 2
            assert first.status(job)["state"] == "done"
            first_bytes = [first.result(job, cell) for cell in (0, 1)]
        finally:
            first.close()

        # A fresh broker (new queue db) sharing only the cache: the same
        # submission is born done — zero leases, zero work units — and
        # serves byte-identical archives.
        second = Broker(tmp_path / "b.sqlite3", cache=cache)
        try:
            summary = second.submit(grid_payload())
            assert summary["cached"] == 2
            assert summary["units"] == 0
            status = second.status(summary["job_id"])
            assert status["state"] == "done"
            assert all(info["from_cache"] for info in status["cells"])
            assert second.lease("w0") is None
            second_bytes = [second.result(summary["job_id"], cell) for cell in (0, 1)]
            assert second_bytes == first_bytes
        finally:
            second.close()

    def test_worker_archives_match_locally_computed_bytes(self, make_broker, archives):
        broker = make_broker()
        job = broker.submit(grid_payload())["job_id"]
        run_worker(broker, jobs="serial", once=True, poll=0.01, worker_id="w0")
        for cell, seed in enumerate((2014, 2015)):
            assert broker.result(job, cell) == archives[seed]


class TestBrokerGC:
    """`repro serve --gc`: completed studies older than the cutoff lose
    their result blobs; everything in flight keeps its bytes."""

    def _finish_job(self, broker, archives, payload) -> str:
        job = broker.submit(payload)
        while True:
            lease = broker.lease("w0")
            if lease is None:
                break
            complete_lease(broker, lease, archives)
        assert broker.status(job["job_id"])["state"] == "done"
        return job["job_id"]

    def test_old_completed_study_is_purged(self, make_broker, archives):
        clock = Clock()
        broker = make_broker(clock=clock)
        job_id = self._finish_job(broker, archives, single_payload())
        clock.advance(8 * 86400.0)
        stats = broker.gc(keep_days=7.0)
        assert stats["studies"] == 1
        assert stats["cells"] == 1
        assert stats["bytes"] > 0
        # Status stays answerable; only the blobs are gone.
        assert broker.status(job_id)["state"] == "done"
        with pytest.raises(ServiceError, match="purged"):
            broker.result(job_id, 0)

    def test_recent_and_inflight_studies_survive(self, make_broker, archives):
        clock = Clock()
        broker = make_broker(clock=clock)
        old_done = self._finish_job(broker, archives, single_payload(seed=2014))
        clock.advance(8 * 86400.0)
        fresh_done = self._finish_job(broker, archives, single_payload(seed=2015))
        inflight = broker.submit(grid_payload())
        stats = broker.gc(keep_days=7.0)
        assert stats["studies"] == 1
        with pytest.raises(ServiceError, match="purged"):
            broker.result(old_done, 0)
        manifest, npz = broker.result(fresh_done, 0)
        assert manifest and npz
        assert broker.status(inflight["job_id"])["state"] == "running"

    def test_gc_is_idempotent(self, make_broker, archives):
        clock = Clock()
        broker = make_broker(clock=clock)
        self._finish_job(broker, archives, single_payload())
        clock.advance(8 * 86400.0)
        assert broker.gc(keep_days=7.0)["studies"] == 1
        again = broker.gc(keep_days=7.0)
        assert again == {"studies": 0, "cells": 0, "bytes": 0}

    def test_negative_keep_days_rejected(self, make_broker):
        with pytest.raises(ConfigError, match="keep_days"):
            make_broker().gc(keep_days=-1.0)

    def test_keep_days_zero_purges_all_completed(self, make_broker, archives):
        clock = Clock()
        broker = make_broker(clock=clock)
        self._finish_job(broker, archives, single_payload())
        clock.advance(1.0)
        assert broker.gc(keep_days=0.0)["studies"] == 1
