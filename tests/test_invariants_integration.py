"""Cross-cutting invariants over full simulated sessions.

These are the checks that catch subtle integration bugs: byte
conservation between the ledger, the metrics, and the CDN's serving
records; monotonicity of the playhead; and scheduler-independent
correctness of the reassembled stream.
"""

import pytest

from repro.core.config import PlayerConfig
from repro.sim.driver import MSPlayerDriver
from repro.sim.profiles import testbed_profile, youtube_profile
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.units import KB


def run_session(seed=1, profile=testbed_profile, stop="cycles", **config_kwargs):
    scenario = Scenario(
        profile(), seed=seed, config=ScenarioConfig(video_duration_s=150.0)
    )
    driver = MSPlayerDriver(
        scenario, PlayerConfig(**config_kwargs), stop=stop, target_cycles=2
    )
    outcome = driver.run()
    return scenario, driver, outcome


class TestByteConservation:
    @pytest.mark.parametrize("scheduler", ["harmonic", "ewma", "ratio"])
    def test_metrics_equal_ledger_bytes(self, scheduler):
        _, driver, outcome = run_session(seed=3, scheduler=scheduler)
        ledger = driver.session.ledger
        metrics = outcome.metrics
        for path_id in driver.session.paths:
            recorded = metrics.prebuffer_bytes_by_path.get(
                path_id, 0
            ) + metrics.rebuffer_bytes_by_path.get(path_id, 0)
            assert recorded == ledger.bytes_by_path.get(path_id, 0)

    def test_servers_served_at_least_delivered_bytes(self):
        _, driver, outcome = run_session(seed=4)
        delivered = sum(driver.session.ledger.bytes_by_path.values())
        served = sum(outcome.server_bytes.values())
        # Server counts include JSON/decoder bodies too, hence >=.
        assert served >= delivered

    def test_frontier_never_exceeds_total(self):
        _, driver, _ = run_session(seed=5)
        ledger = driver.session.ledger
        assert 0 <= ledger.contiguous_frontier <= ledger.total_bytes

    def test_no_byte_fetched_twice_without_failure(self):
        _, driver, outcome = run_session(seed=6)
        if outcome.metrics.failovers == 0:
            ledger = driver.session.ledger
            in_flight = sum(
                a.byte_range.length
                for a in (
                    ledger.in_flight_for(p) for p in driver.session.paths
                )
                if a is not None
            )
            delivered = sum(ledger.bytes_by_path.values())
            # Everything delivered + still in flight fits in the file.
            assert delivered <= ledger.total_bytes
            assert delivered + in_flight <= ledger.total_bytes + in_flight


class TestPlaybackSanity:
    def test_playhead_monotone_nonnegative(self):
        _, driver, _ = run_session(seed=7, stop="full")
        buffer = driver.session.buffer
        assert 0.0 <= buffer.playhead_s <= buffer.video_duration_s + 1e-9

    def test_no_stalls_on_healthy_links(self):
        for seed in range(3):
            _, _, outcome = run_session(seed=seed, stop="full")
            assert outcome.metrics.total_stall_time == pytest.approx(0.0, abs=0.3)

    def test_startup_delay_bounded_below_by_bootstrap(self):
        _, _, outcome = run_session(seed=8)
        # Cannot start playback before the fast path's first video byte.
        assert outcome.startup_delay > outcome.path_first_video_delay[0]

    def test_cycle_durations_positive(self):
        _, _, outcome = run_session(seed=9, profile=youtube_profile)
        for duration in outcome.metrics.completed_cycle_durations():
            assert duration >= 0.0


class TestSchedulerIndependence:
    """Whatever the scheduler does, the stream must reassemble correctly."""

    @pytest.mark.parametrize("scheduler", ["harmonic", "ewma", "ratio", "last", "window"])
    @pytest.mark.parametrize("chunk_kb", [16, 256])
    def test_every_scheduler_completes_prebuffer(self, scheduler, chunk_kb):
        _, driver, outcome = run_session(
            seed=11,
            stop="prebuffer",
            scheduler=scheduler,
            base_chunk_bytes=chunk_kb * KB,
        )
        assert outcome.stop_reason == "prebuffer-complete"
        ledger = driver.session.ledger
        # The contiguous frontier covers at least the pre-buffer amount.
        needed = driver.session.buffer.config.prebuffer_s * driver.session._bitrate_()
        assert ledger.contiguous_frontier >= needed * 0.99

    @pytest.mark.parametrize("scheduler", ["harmonic", "ratio"])
    def test_out_of_order_constraint_held(self, scheduler):
        for seed in range(4):
            _, _, outcome = run_session(seed=seed, stop="prebuffer", scheduler=scheduler)
            assert outcome.peak_out_of_order <= 1, (scheduler, seed)
