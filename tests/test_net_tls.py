"""TLS timing model: the Fig. 1 closed forms."""

import pytest

from repro.errors import ConfigError
from repro.net.tls import (
    TLSParams,
    eta,
    head_start,
    pi_first_video_packet,
    psi,
    secure_connection_setup_time,
    tls_handshake_duration,
)


class TestHandshakeDuration:
    def test_full_handshake(self):
        tls = TLSParams(delta1=0.008, delta2=0.008)
        assert tls_handshake_duration(0.050, tls) == pytest.approx(0.116)

    def test_resumption_requires_flag(self):
        tls = TLSParams(delta1=0.008, delta2=0.008, resumption=False)
        # resumed=True without server support: still a full handshake.
        assert tls_handshake_duration(0.050, tls, resumed=True) == pytest.approx(0.116)

    def test_abbreviated(self):
        tls = TLSParams(delta1=0.008, delta2=0.004, resumption=True)
        assert tls_handshake_duration(0.050, tls, resumed=True) == pytest.approx(0.054)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ConfigError):
            tls_handshake_duration(-0.001, TLSParams())

    def test_negative_deltas_rejected(self):
        with pytest.raises(ConfigError):
            TLSParams(delta1=-0.001)


class TestPaperFormulas:
    """η = 4R+Δ1+Δ2, ψ = 6R+Δ1+Δ2, π ≈ ψ+η, head start = 10(θ−1)R1 (§3.2)."""

    tls = TLSParams(delta1=0.010, delta2=0.006)

    def test_eta(self):
        assert eta(0.050, self.tls) == pytest.approx(4 * 0.050 + 0.016)

    def test_psi_is_eta_plus_two_rtt(self):
        assert psi(0.050, self.tls) == pytest.approx(eta(0.050, self.tls) + 2 * 0.050)

    def test_pi(self):
        assert pi_first_video_packet(0.050, self.tls) == pytest.approx(
            psi(0.050, self.tls) + eta(0.050, self.tls)
        )

    def test_setup_time_one_rtt_before_eta(self):
        # η counts the request's first-byte RTT on top of setup.
        assert secure_connection_setup_time(0.050, self.tls) == pytest.approx(
            eta(0.050, self.tls) - 0.050
        )

    @pytest.mark.parametrize("theta", [1.0, 1.5, 2.0, 2.5, 3.0])
    def test_head_start_formula(self, theta):
        r1 = 0.040
        assert head_start(r1, theta * r1) == pytest.approx(10.0 * (theta - 1.0) * r1)

    def test_head_start_is_pi_difference_when_deltas_match(self):
        r1, r2 = 0.030, 0.075
        difference = pi_first_video_packet(r2, self.tls) - pi_first_video_packet(
            r1, self.tls
        )
        assert difference == pytest.approx(head_start(r1, r2))

    def test_head_start_validates(self):
        with pytest.raises(ConfigError):
            head_start(0.0, 0.05)
