"""End-to-end simulated sessions: MSPlayer driver, single-path, runner."""

import pytest

from repro.core.config import PlayerConfig
from repro.sim.driver import MSPlayerDriver
from repro.sim.profiles import mobility_profile, testbed_profile, youtube_profile
from repro.sim.runner import TrialRunner
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.singlepath import FLASH_CHUNK, HTML5_CHUNK, SinglePathDriver
from repro.units import KB, MB


def short_video(duration=120.0, **kwargs):
    return ScenarioConfig(video_duration_s=duration, **kwargs)


class TestMSPlayerPrebuffer:
    def test_prebuffer_run_completes(self):
        scenario = Scenario(testbed_profile(), seed=1, config=short_video())
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run()
        assert outcome.stop_reason == "prebuffer-complete"
        assert outcome.startup_delay is not None and outcome.startup_delay > 0

    def test_same_seed_reproduces_exactly(self):
        def run():
            scenario = Scenario(testbed_profile(), seed=99, config=short_video())
            return MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run()

        a, b = run(), run()
        assert a.startup_delay == b.startup_delay
        assert a.requests_by_path == b.requests_by_path

    def test_different_seeds_differ(self):
        delays = set()
        for seed in range(4):
            scenario = Scenario(testbed_profile(), seed=seed, config=short_video())
            delays.add(
                MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run().startup_delay
            )
        assert len(delays) > 1

    def test_both_paths_carry_traffic(self):
        scenario = Scenario(testbed_profile(), seed=3, config=short_video())
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run()
        fraction = outcome.metrics.traffic_fraction(0, "prebuffer")
        assert 0.0 < fraction < 1.0

    def test_wifi_bootstraps_before_lte(self):
        # theta > 1: the WiFi path's first video byte precedes LTE's.
        scenario = Scenario(testbed_profile(), seed=5, config=short_video())
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run()
        assert outcome.path_first_video_delay[0] < outcome.path_first_video_delay[1]

    def test_out_of_order_bounded(self):
        # The equal-completion-time design goal (§2): at most one
        # out-of-order chunk buffered.
        scenario = Scenario(testbed_profile(), seed=7, config=short_video())
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer").run()
        assert outcome.peak_out_of_order <= 1

    def test_faster_than_best_single_path(self):
        config = PlayerConfig()
        ms = MSPlayerDriver(
            Scenario(testbed_profile(), seed=11, config=short_video()), config, stop="prebuffer"
        ).run()
        wifi = SinglePathDriver(
            Scenario(testbed_profile(), seed=11, config=short_video()),
            0,
            HTML5_CHUNK,
            config,
            stop="prebuffer",
        ).run()
        assert ms.startup_delay < wifi.startup_delay

    def test_single_path_mode(self):
        config = PlayerConfig(max_paths=1)
        scenario = Scenario(testbed_profile(), seed=2, config=short_video())
        outcome = MSPlayerDriver(scenario, config, stop="prebuffer").run()
        assert outcome.stop_reason == "prebuffer-complete"
        assert set(outcome.requests_by_path) == {0}

    def test_copyrighted_video_decoder_detour(self):
        plain = Scenario(testbed_profile(), seed=21, config=short_video())
        crypt = Scenario(
            testbed_profile(), seed=21, config=short_video(copyrighted=True)
        )
        t_plain = MSPlayerDriver(plain, PlayerConfig(), stop="prebuffer").run()
        t_crypt = MSPlayerDriver(crypt, PlayerConfig(), stop="prebuffer").run()
        # Footnote 1: the decoder fetch happens after the JSON decode
        # and before the video connection, so it delays the first video
        # byte (π), not ψ.
        assert (
            t_crypt.path_first_video_delay[0] > t_plain.path_first_video_delay[0]
        )
        assert t_crypt.stop_reason == "prebuffer-complete"


class TestFullSessionsAndCycles:
    def test_cycles_stop_condition(self):
        scenario = Scenario(youtube_profile(), seed=31, config=short_video(duration=240.0))
        outcome = MSPlayerDriver(
            scenario, PlayerConfig(), stop="cycles", target_cycles=2
        ).run()
        assert outcome.stop_reason == "cycles-complete"
        assert len(outcome.metrics.completed_cycle_durations()) >= 2

    def test_full_short_session_finishes_playback(self):
        scenario = Scenario(testbed_profile(), seed=41, config=short_video(duration=60.0))
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="full").run()
        assert outcome.stop_reason == "playback-finished"
        assert outcome.metrics.playback_finished_at is not None
        assert outcome.metrics.total_stall_time == pytest.approx(0.0, abs=0.5)

    def test_watchdog_bounds_runaway(self):
        scenario = Scenario(testbed_profile(), seed=5, config=short_video(duration=60.0))
        outcome = MSPlayerDriver(
            scenario, PlayerConfig(), stop="full", max_sim_time=1.0
        ).run()
        assert outcome.stop_reason == "timeout"


class TestRobustness:
    def test_wifi_outage_survived_by_failing_over_to_lte(self):
        profile = mobility_profile(wifi_down_at=6.0, wifi_up_at=30.0)
        scenario = Scenario(profile, seed=51, config=short_video(duration=90.0))
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="full").run()
        assert outcome.stop_reason == "playback-finished"
        # LTE (path 1) carried the load during the outage.
        assert outcome.metrics.rebuffer_bytes_by_path.get(1, 0) > 0

    def test_video_server_crash_triggers_source_failover(self):
        scenario = Scenario(youtube_profile(), seed=61, config=short_video(duration=90.0))

        def crash():
            yield scenario.env.timeout(3.0)
            scenario.deployment.pools["wifi-net"].video_hosts[0].fail()

        scenario.env.process(crash())
        outcome = MSPlayerDriver(scenario, PlayerConfig(), stop="full").run()
        assert outcome.stop_reason == "playback-finished"
        assert outcome.metrics.failovers >= 1

    def test_single_path_baseline_dies_on_outage(self):
        profile = mobility_profile(wifi_down_at=2.0, wifi_up_at=200.0)
        scenario = Scenario(profile, seed=71, config=short_video(duration=90.0))
        outcome = SinglePathDriver(
            scenario, 0, HTML5_CHUNK, PlayerConfig(), stop="full"
        ).run()
        assert outcome.stop_reason.startswith("failed")


class TestSinglePathDriver:
    def test_prebuffer_one_large_chunk(self):
        # Commercial players fetch the pre-buffer as ONE range (§6).
        scenario = Scenario(testbed_profile(), seed=81, config=short_video())
        outcome = SinglePathDriver(
            scenario, 0, HTML5_CHUNK, PlayerConfig(), stop="prebuffer"
        ).run()
        assert outcome.requests_by_path[0] == 1

    def test_rebuffer_uses_fixed_chunks(self):
        scenario = Scenario(testbed_profile(), seed=82, config=short_video(duration=240.0))
        config = PlayerConfig()
        outcome = SinglePathDriver(
            scenario, 0, FLASH_CHUNK, config, stop="cycles", target_cycles=1
        ).run()
        # One cycle fetches ~20 s of video in 64 KB pieces: many requests.
        assert outcome.requests_by_path[0] > 10

    def test_larger_chunks_refill_faster(self):
        config = PlayerConfig()

        def refill_time(chunk):
            scenario = Scenario(
                testbed_profile(), seed=83, config=short_video(duration=240.0)
            )
            outcome = SinglePathDriver(
                scenario, 0, chunk, config, stop="cycles", target_cycles=2
            ).run()
            cycles = outcome.metrics.completed_cycle_durations()
            return sum(cycles) / len(cycles)

        assert refill_time(HTML5_CHUNK) < refill_time(FLASH_CHUNK)

    def test_lte_slower_than_wifi(self):
        config = PlayerConfig()
        results = {}
        for index in (0, 1):
            scenario = Scenario(testbed_profile(), seed=84, config=short_video())
            results[index] = SinglePathDriver(
                scenario, index, HTML5_CHUNK, config, stop="prebuffer"
            ).run().startup_delay
        assert results[0] < results[1]

    def test_invalid_stop_rejected(self):
        scenario = Scenario(testbed_profile(), seed=1, config=short_video())
        with pytest.raises(ValueError):
            SinglePathDriver(scenario, 0, HTML5_CHUNK, stop="whenever")


class TestTrialRunner:
    def test_runner_produces_requested_trials(self):
        runner = TrialRunner(testbed_profile, scenario_config=short_video(), trials=3)
        result = runner.run("ms", runner.msplayer(PlayerConfig(), stop="prebuffer"))
        assert len(result.outcomes) == 3
        assert len(result.startup_delays()) == 3

    def test_seed_derivation_stable(self):
        runner = TrialRunner(testbed_profile, trials=2, root_seed=5)
        assert runner.seed_for("a", 0) == TrialRunner(
            testbed_profile, trials=2, root_seed=5
        ).seed_for("a", 0)
        assert runner.seed_for("a", 0) != runner.seed_for("a", 1)
        assert runner.seed_for("a", 0) != runner.seed_for("b", 0)

    def test_traffic_fraction_helper(self):
        runner = TrialRunner(testbed_profile, scenario_config=short_video(), trials=2)
        result = runner.run("ms", runner.msplayer(PlayerConfig(), stop="prebuffer"))
        fractions = result.traffic_fractions(0, "prebuffer")
        assert len(fractions) == 2
        assert all(0.0 <= f <= 1.0 for f in fractions)
