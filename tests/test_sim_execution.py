"""Trial execution engine: spec picklability, backends, determinism.

The acceptance bar for the process backend is *bit-identical* results:
the ``(root_seed, label, trial)`` seed derivation fully determines a
trial, so fanning trials out over worker processes must change nothing
about the outcomes — only the wall clock.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from functools import partial

import pytest

import repro
from repro.analysis.experiments import (
    fig3_scheduler_sweep,
    fig5_rebuffer,
    table1_traffic_fraction,
)
from repro.core.config import PlayerConfig
from repro.errors import ConfigError
from repro.sim.execution import (
    MPTCPLikeSpec,
    MSPlayerSpec,
    ProcessEngine,
    SerialEngine,
    SinglePathSpec,
    TrialSpec,
    resolve_engine,
    run_trial,
)
from repro.sim.profiles import mobility_profile, testbed_profile
from repro.sim.runner import TrialRunner
from repro.sim.scenario import ScenarioConfig
from repro.units import KB

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def short_config() -> ScenarioConfig:
    return ScenarioConfig(video_duration_s=120.0)


class TestSeedDerivation:
    def test_seed_for_is_stable_within_process(self):
        a = TrialRunner(testbed_profile, trials=2, root_seed=7)
        b = TrialRunner(testbed_profile, trials=2, root_seed=7)
        assert [a.seed_for("cfg", t) for t in range(5)] == [
            b.seed_for("cfg", t) for t in range(5)
        ]

    def test_seed_for_is_stable_across_processes(self):
        """The derivation must not depend on per-process state (hash
        randomization, import order): a fresh interpreter derives the
        same seeds, which is what makes process fan-out trustworthy."""
        code = (
            "from repro.sim.runner import TrialRunner\n"
            "from repro.sim.profiles import testbed_profile\n"
            "runner = TrialRunner(testbed_profile, root_seed=20141202)\n"
            "print([runner.seed_for('fig3/a', t) for t in range(4)])\n"
        )
        env = {**os.environ, "PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": "random"}
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env, check=True
        )
        runner = TrialRunner(testbed_profile, root_seed=20141202)
        assert out.stdout.strip() == str([runner.seed_for("fig3/a", t) for t in range(4)])

    def test_distinct_labels_and_trials_get_distinct_seeds(self):
        runner = TrialRunner(testbed_profile)
        seeds = {runner.seed_for(label, t) for label in ("a", "b") for t in range(10)}
        assert len(seeds) == 20


class TestSpecPicklability:
    def test_driver_specs_round_trip(self):
        config = PlayerConfig(scheduler="ratio", base_chunk_bytes=64 * KB)
        for spec in (
            MSPlayerSpec(config=config, stop="cycles", target_cycles=2),
            SinglePathSpec(iface_index=1, chunk_bytes=64 * KB, config=config),
            MPTCPLikeSpec(config=config),
        ):
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_trial_spec_round_trips_with_partial_profile(self):
        spec = TrialSpec(
            label="x1",
            trial=3,
            seed=99,
            profile_factory=partial(mobility_profile, wifi_down_at=15.0, wifi_up_at=75.0),
            driver=MSPlayerSpec(config=PlayerConfig(), stop="full"),
            scenario_config=short_config(),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.label == spec.label and clone.seed == spec.seed
        assert clone.profile_factory().outages == spec.profile_factory().outages

    def test_run_trial_executes_a_spec(self):
        runner = TrialRunner(testbed_profile, scenario_config=short_config(), trials=1)
        spec = runner.specs_for("one", runner.msplayer(PlayerConfig()))[0]
        outcome = run_trial(spec)
        assert outcome.stop_reason == "prebuffer-complete"
        assert outcome.startup_delay is not None


class TestEngineResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(resolve_engine(), SerialEngine)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        engine = resolve_engine()
        assert isinstance(engine, ProcessEngine) and engine.jobs == 3

    def test_tokens(self):
        assert isinstance(resolve_engine("serial"), SerialEngine)
        assert isinstance(resolve_engine(1), SerialEngine)
        auto = resolve_engine("auto")
        assert isinstance(auto, ProcessEngine) and auto.fallback_to_serial
        assert resolve_engine("4").jobs == 4
        assert resolve_engine(0).fallback_to_serial

    def test_engine_instances_pass_through(self):
        engine = ProcessEngine(2)
        assert resolve_engine(engine) is engine

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            resolve_engine("several")

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ConfigError):
            ProcessEngine(-2)


class TestSerialParallelEquivalence:
    def test_trial_runner_outcomes_identical(self):
        config = PlayerConfig()
        serial = TrialRunner(
            testbed_profile, scenario_config=short_config(), trials=4, jobs=1
        )
        parallel = TrialRunner(
            testbed_profile, scenario_config=short_config(), trials=4, jobs=2
        )
        a = serial.run("eq", serial.msplayer(config))
        b = parallel.run("eq", parallel.msplayer(config))
        assert a.startup_delays() == b.startup_delays()
        assert [o.finished_at for o in a.outcomes] == [o.finished_at for o in b.outcomes]
        assert [o.server_bytes for o in a.outcomes] == [o.server_bytes for o in b.outcomes]

    def test_fig3_mini_rendered_byte_identical(self):
        kwargs = dict(
            trials=3, prebuffers=(20.0,), chunks=(64 * KB,), schedulers=("harmonic", "ratio")
        )
        serial = fig3_scheduler_sweep(jobs="serial", **kwargs)
        parallel = fig3_scheduler_sweep(jobs=2, **kwargs)
        assert serial.rendered == parallel.rendered
        assert serial.raw == parallel.raw

    def test_fig5_mini_rendered_byte_identical(self):
        kwargs = dict(trials=2, rebuffers=(20.0,), target_cycles=1)
        serial = fig5_rebuffer(jobs="serial", **kwargs)
        parallel = fig5_rebuffer(jobs=2, **kwargs)
        assert serial.rendered == parallel.rendered

    def test_table1_mini_rendered_byte_identical(self):
        kwargs = dict(trials=2, durations=(20.0,))
        serial = table1_traffic_fraction(jobs="serial", **kwargs)
        parallel = table1_traffic_fraction(jobs=2, **kwargs)
        assert serial.rendered == parallel.rendered


def _kill_worker(scenario) -> None:
    """Scenario hook that hard-kills the worker process mid-trial.

    Module-level (picklable) so the spec reaches the pool; ``os._exit``
    bypasses cleanup exactly like an OOM kill would, which is what
    breaks a ``ProcessPoolExecutor`` permanently.
    """
    os._exit(13)


class TestBrokenPoolRecovery:
    """A dead executor must not poison the shared-pool cache."""

    JOBS = 2  # keyed into _POOLS; all assertions use this count

    def test_broken_pool_evicted_and_next_campaign_succeeds(self):
        from concurrent.futures.process import BrokenProcessPool

        from repro.sim import execution

        runner = TrialRunner(
            testbed_profile,
            scenario_config=short_config(),
            trials=4,
            engine=ProcessEngine(self.JOBS),
        )
        # Specs that kill their worker break the fresh retry pool too,
        # so the engine re-raises — but must leave no dead pool behind.
        with pytest.raises(BrokenProcessPool):
            runner.run(
                "killer", runner.msplayer(PlayerConfig()), scenario_hook=_kill_worker
            )
        assert self.JOBS not in execution._POOLS

        # The same worker count must now work again on a fresh fork.
        healthy = runner.run("healthy", runner.msplayer(PlayerConfig()))
        assert len(healthy.outcomes) == 4
        assert self.JOBS in execution._POOLS

    def test_single_break_retried_on_fresh_pool(self, monkeypatch):
        """First map attempt breaks, the retry succeeds: callers never
        see the exception and the cache holds a live pool again."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.sim import execution

        class _BrokenOnce:
            def __init__(self):
                self.calls = 0

            def map(self, fn, specs, chunksize=1):
                self.calls += 1
                raise BrokenProcessPool("simulated dead executor")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        broken = _BrokenOnce()
        monkeypatch.setitem(execution._POOLS, self.JOBS, broken)
        runner = TrialRunner(
            testbed_profile,
            scenario_config=short_config(),
            trials=4,
            engine=ProcessEngine(self.JOBS),
        )
        result = runner.run("recovered", runner.msplayer(PlayerConfig()))
        assert broken.calls == 1
        assert len(result.outcomes) == 4
        assert execution._POOLS.get(self.JOBS) is not broken


class TestClosureHandling:
    def test_process_engine_rejects_closures_loudly(self):
        runner = TrialRunner(
            testbed_profile,
            scenario_config=short_config(),
            trials=2,
            engine=ProcessEngine(2),
        )
        with pytest.raises(ConfigError, match="not picklable"):
            runner.run("closure", lambda scenario: None)

    def test_auto_engine_falls_back_to_serial_for_closures(self):
        from repro.sim.driver import MSPlayerDriver

        def closure_factory(scenario):
            return MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer")

        auto = TrialRunner(
            testbed_profile,
            scenario_config=short_config(),
            trials=2,
            engine=ProcessEngine(2, fallback_to_serial=True),
        )
        serial = TrialRunner(
            testbed_profile, scenario_config=short_config(), trials=2, jobs=1
        )
        a = auto.run("cl", closure_factory)
        b = serial.run("cl", serial.msplayer(PlayerConfig()))
        assert a.startup_delays() == b.startup_delays()
