"""Fluid link: max-min allocation, sharing dynamics, outages."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import LinkDownError, NetworkError
from repro.net.bandwidth import ConstantBandwidth, TraceBandwidth
from repro.net.env import Environment
from repro.net.link import Link, max_min_allocation
from repro.units import mbit

from conftest import make_link


class TestMaxMinAllocation:
    def test_equal_split_uncapped(self):
        assert max_min_allocation(9.0, [math.inf] * 3) == [3.0, 3.0, 3.0]

    def test_capped_flow_frees_surplus(self):
        assert max_min_allocation(10.0, [2.0, math.inf]) == [2.0, 8.0]

    def test_all_capped_below_fair_share(self):
        assert max_min_allocation(100.0, [1.0, 2.0, 3.0]) == [1.0, 2.0, 3.0]

    def test_empty(self):
        assert max_min_allocation(5.0, []) == []

    def test_zero_capacity(self):
        assert max_min_allocation(0.0, [math.inf, 5.0]) == [0.0, 0.0]

    @given(
        st.floats(min_value=0.1, max_value=1e9),
        st.lists(st.floats(min_value=0.01, max_value=1e9), min_size=1, max_size=12),
    )
    def test_feasibility_and_cap_respect(self, capacity, caps):
        rates = max_min_allocation(capacity, caps)
        assert len(rates) == len(caps)
        assert sum(rates) <= capacity * (1 + 1e-9)
        for rate, cap in zip(rates, caps, strict=True):
            assert 0.0 <= rate <= cap * (1 + 1e-9)

    @given(
        st.floats(min_value=0.1, max_value=1e6),
        st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=8),
    )
    def test_work_conserving(self, capacity, caps):
        # Either the link is saturated or every flow is at its cap.
        rates = max_min_allocation(capacity, caps)
        saturated = sum(rates) >= capacity * (1 - 1e-9)
        all_capped = all(r >= c * (1 - 1e-9) for r, c in zip(rates, caps, strict=True))
        assert saturated or all_capped

    @staticmethod
    def _reference_allocation(capacity, caps):
        """The original O(n²) water-filling (sorted list + pop(0)),
        kept verbatim as the oracle for the linear-pass rewrite."""
        n = len(caps)
        if n == 0:
            return []
        rates = [0.0] * n
        remaining = capacity
        unsaturated = sorted(range(n), key=lambda i: caps[i])
        while unsaturated:
            share = remaining / len(unsaturated)
            lowest = unsaturated[0]
            if caps[lowest] <= share:
                rates[lowest] = caps[lowest]
                remaining -= caps[lowest]
                unsaturated.pop(0)
            else:
                for index in unsaturated:
                    rates[index] = share
                break
        return rates

    @given(
        st.floats(min_value=0.0, max_value=1e9),
        st.lists(
            st.one_of(
                st.floats(min_value=0.001, max_value=1e9),
                st.just(math.inf),
            ),
            min_size=0,
            max_size=16,
        ),
    )
    def test_linear_pass_matches_quadratic_reference(self, capacity, caps):
        # Bit-identical, not approximately equal: the linear pass
        # performs the same arithmetic in the same order, so simulation
        # results cannot drift from the rewrite.
        assert max_min_allocation(capacity, caps) == self._reference_allocation(
            capacity, caps
        )


class TestLinkTransfers:
    def test_single_flow_completion_time(self, env):
        link = make_link(env, mbps=8.0)  # 1e6 B/s
        flow = link.start_flow(2_000_000)
        env.run(flow.done)
        assert env.now == pytest.approx(2.0, rel=1e-6)

    def test_two_flows_share_equally(self, env):
        link = make_link(env, mbps=8.0)
        a = link.start_flow(1_000_000)
        b = link.start_flow(1_000_000)
        env.run(a.done & b.done)
        assert a.finished_at == pytest.approx(2.0, rel=1e-6)
        assert b.finished_at == pytest.approx(2.0, rel=1e-6)

    def test_staggered_arrival_processor_sharing(self, env):
        link = Link(env, ConstantBandwidth(1e6))
        first = link.start_flow(1_500_000)

        def later(env):
            yield env.timeout(1.0)
            second = link.start_flow(500_000)
            yield second.done
            return second

        process = env.process(later(env))
        env.run(first.done & process)
        # first: 1s alone (1e6 B) then shares 0.5e6 B/s for its last 0.5e6 B.
        assert first.finished_at == pytest.approx(2.0, rel=1e-6)
        assert process.value.finished_at == pytest.approx(2.0, rel=1e-6)

    def test_cap_limits_rate(self, env):
        link = Link(env, ConstantBandwidth(1e6))
        flow = link.start_flow(500_000, cap=250_000.0)
        env.run(flow.done)
        assert env.now == pytest.approx(2.0, rel=1e-6)

    def test_raising_cap_mid_flight_speeds_up(self, env):
        link = Link(env, ConstantBandwidth(1e6))
        flow = link.start_flow(1_000_000, cap=250_000.0)

        def raiser(env):
            yield env.timeout(1.0)
            flow.set_cap(math.inf)

        env.process(raiser(env))
        env.run(flow.done)
        # 1 s at 250 kB/s, then 750 kB at 1 MB/s.
        assert env.now == pytest.approx(1.75, rel=1e-6)

    def test_capacity_change_reshapes_completion(self, env):
        trace = TraceBandwidth([(1.0, 1e6), (100.0, 2e6)])
        link = Link(env, trace)
        flow = link.start_flow(2_000_000)
        env.run(flow.done)
        # 1 MB in the first second, 1 MB at 2 MB/s afterwards.
        assert env.now == pytest.approx(1.5, rel=1e-6)

    def test_bytes_carried_accounting(self, env):
        link = make_link(env, mbps=8.0)
        flow = link.start_flow(3_000_000)
        env.run(flow.done)
        assert link.bytes_carried == pytest.approx(3_000_000, rel=1e-9)

    def test_conservation_with_many_flows(self, env):
        link = Link(env, ConstantBandwidth(1e6))
        sizes = [100_000 * (i + 1) for i in range(6)]
        flows = [link.start_flow(size) for size in sizes]
        env.run(env.all_of([f.done for f in flows]))
        assert link.bytes_carried == pytest.approx(sum(sizes), rel=1e-9)
        # Total time can't beat capacity.
        assert env.now >= sum(sizes) / 1e6 * (1 - 1e-9)

    def test_invalid_flow_sizes_rejected(self, env, link):
        with pytest.raises(Exception):
            link.start_flow(0)
        with pytest.raises(Exception):
            link.start_flow(100, cap=0.0)


class TestLinkFailure:
    def test_start_flow_on_down_link_refused(self, env, link):
        link.set_down(True)
        with pytest.raises(LinkDownError):
            link.start_flow(1000)

    def test_flows_stall_while_down_and_resume(self, env):
        link = Link(env, ConstantBandwidth(1e6))
        flow = link.start_flow(1_000_000)

        def outage(env):
            yield env.timeout(0.5)
            link.set_down(True)
            yield env.timeout(2.0)
            link.set_down(False)

        env.process(outage(env))
        env.run(flow.done)
        # 0.5 s transfer + 2 s outage + 0.5 s remaining.
        assert env.now == pytest.approx(3.0, rel=1e-6)

    def test_reset_flows_fails_waiters(self, env):
        link = Link(env, ConstantBandwidth(1e6))
        flow = link.start_flow(10_000_000)

        def killer(env):
            yield env.timeout(0.1)
            link.reset_flows()

        def waiter(env):
            with pytest.raises(NetworkError):
                yield flow.done
            return "saw-reset"

        env.process(killer(env))
        process = env.process(waiter(env))
        env.run(process)
        assert process.value == "saw-reset"

    def test_abort_is_idempotent(self, env, link):
        flow = link.start_flow(1000)
        flow.abort()
        flow.abort()  # second abort is a no-op
        assert not flow.active

    def test_status_listeners_fire(self, env, link):
        seen = []
        link.status_listeners.append(seen.append)
        link.set_down(True)
        link.set_down(True)  # no duplicate event
        link.set_down(False)
        assert seen == [True, False]
