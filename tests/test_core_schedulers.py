"""Chunk schedulers: Ratio baseline and DCSA with pluggable estimators."""

import pytest

from repro.core.config import PlayerConfig
from repro.core.schedulers import DCSAScheduler, RatioScheduler, make_scheduler
from repro.errors import ConfigError, SchedulerError
from repro.units import KB, MB

BASE = 256 * KB


def record_rate(scheduler, path_id, rate, seconds=1.0):
    """Record a chunk whose measured throughput is exactly ``rate``."""
    scheduler.record(path_id, int(rate * seconds), seconds)


@pytest.fixture
def two_paths():
    def build(name="ratio", **overrides):
        config = PlayerConfig(scheduler=name, base_chunk_bytes=BASE, **overrides)
        scheduler = make_scheduler(config)
        scheduler.register_path(0)
        scheduler.register_path(1)
        return scheduler

    return build


class TestRegistry:
    @pytest.mark.parametrize("name", ["ratio", "ewma", "harmonic", "last", "window"])
    def test_known_names(self, name):
        assert make_scheduler(PlayerConfig(scheduler=name)).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_scheduler(PlayerConfig(scheduler="oracle"))

    def test_harmonic_and_ewma_are_dcsa(self):
        assert isinstance(make_scheduler(PlayerConfig(scheduler="harmonic")), DCSAScheduler)
        assert isinstance(make_scheduler(PlayerConfig(scheduler="ewma")), DCSAScheduler)

    def test_ratio_is_ratio(self):
        assert isinstance(make_scheduler(PlayerConfig(scheduler="ratio")), RatioScheduler)


class TestCommonBehaviour:
    def test_initial_chunk_is_base(self, two_paths):
        scheduler = two_paths("harmonic")
        assert scheduler.chunk_size(0) == BASE
        assert scheduler.chunk_size(1) == BASE

    def test_unregistered_path_rejected(self, two_paths):
        scheduler = two_paths()
        with pytest.raises(SchedulerError):
            scheduler.chunk_size(7)

    def test_register_idempotent(self, two_paths):
        scheduler = two_paths("harmonic")
        record_rate(scheduler, 0, 1e6)
        scheduler.register_path(0)  # must not clobber state
        assert scheduler.estimate(0) is not None

    def test_reset_path_rearms_base(self, two_paths):
        scheduler = two_paths("harmonic")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)
        record_rate(scheduler, 0, 4e6)
        scheduler.reset_path(0)
        assert scheduler.chunk_size(0) == BASE
        assert scheduler.estimate(0) is None

    def test_forget_path(self, two_paths):
        scheduler = two_paths("harmonic")
        scheduler.forget_path(1)
        assert scheduler.paths() == [0]

    def test_record_returns_throughput(self, two_paths):
        scheduler = two_paths("harmonic")
        assert scheduler.record(0, 1_000_000, 2.0) == pytest.approx(500_000.0)

    def test_invalid_measurements_rejected(self, two_paths):
        scheduler = two_paths()
        with pytest.raises(SchedulerError):
            scheduler.record(0, 0, 1.0)
        with pytest.raises(SchedulerError):
            scheduler.record(0, 100, 0.0)


class TestRatioScheduler:
    def test_slow_path_pinned_to_base(self, two_paths):
        scheduler = two_paths("ratio")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)  # slower
        assert scheduler.chunk_size(1) == BASE

    def test_fast_path_scaled_by_ratio(self, two_paths):
        # S_fast = w_fast/w_slow · B (§3.3).
        scheduler = two_paths("ratio")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)
        assert scheduler.chunk_size(0) == pytest.approx(4 * BASE, rel=0.01)

    def test_responds_only_to_latest_samples(self, two_paths):
        # Ratio has no memory: a single swapped measurement flips roles.
        scheduler = two_paths("ratio")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)
        record_rate(scheduler, 0, 0.5e6)  # path 0 collapses
        assert scheduler.chunk_size(0) == BASE
        assert scheduler.chunk_size(1) == pytest.approx(2 * BASE, rel=0.01)

    def test_single_path_stays_at_base(self):
        config = PlayerConfig(scheduler="ratio", base_chunk_bytes=BASE)
        scheduler = make_scheduler(config)
        scheduler.register_path(0)
        record_rate(scheduler, 0, 5e6)
        assert scheduler.chunk_size(0) == BASE

    def test_clamped_to_max_chunk(self, two_paths):
        scheduler = two_paths("ratio", max_chunk_bytes=1 * MB)
        record_rate(scheduler, 0, 100e6)
        record_rate(scheduler, 1, 1e6)
        assert scheduler.chunk_size(0) == 1 * MB


class TestDCSAScheduler:
    def test_slow_path_doubles_on_sustained_improvement(self, two_paths):
        scheduler = two_paths("harmonic")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)
        size_before = scheduler.chunk_size(1)
        record_rate(scheduler, 1, 1.5e6)  # 50 % above estimate
        assert scheduler.chunk_size(1) == 2 * size_before

    def test_slow_path_halves_on_decline(self, two_paths):
        scheduler = two_paths("harmonic")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)
        size_before = scheduler.chunk_size(1)
        record_rate(scheduler, 1, 0.5e6)
        assert scheduler.chunk_size(1) == max(size_before // 2, 16 * KB)

    def test_fast_path_tracks_gamma_times_slow_chunk(self, two_paths):
        scheduler = two_paths("harmonic")
        record_rate(scheduler, 0, 4e6)
        record_rate(scheduler, 1, 1e6)
        record_rate(scheduler, 0, 4e6)
        # γ = ⌈4/1⌉ = 4; slow chunk is base.
        assert scheduler.chunk_size(0) == 4 * scheduler.chunk_size(1)

    def test_ewma_uses_configured_alpha(self):
        config = PlayerConfig(scheduler="ewma", alpha=0.5)
        scheduler = make_scheduler(config)
        scheduler.register_path(0)
        record_rate(scheduler, 0, 1e6)
        record_rate(scheduler, 0, 3e6)
        assert scheduler.estimate(0) == pytest.approx(2e6)

    def test_stable_throughput_keeps_sizes_stable(self, two_paths):
        scheduler = two_paths("harmonic")
        for _ in range(10):
            record_rate(scheduler, 0, 4e6)
            record_rate(scheduler, 1, 1e6)
        assert scheduler.chunk_size(1) == BASE
        assert scheduler.chunk_size(0) == 4 * BASE

    def test_estimator_name_on_scheduler(self):
        scheduler = make_scheduler(PlayerConfig(scheduler="window"))
        assert scheduler.name == "window"
