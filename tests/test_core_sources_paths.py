"""Source failover and path lifecycle."""

import pytest

from repro.core.paths import PathPhase, PathState
from repro.core.sources import SourceManager
from repro.errors import PlayerError, SourcesExhaustedError


class TestSourceManager:
    def make(self, n=3, max_strikes=2):
        manager = SourceManager("wifi-net", max_strikes=max_strikes)
        manager.set_candidates([f"v{i}.example" for i in range(n)])
        return manager

    def test_first_candidate_active(self):
        assert self.make().active == "v0.example"

    def test_failover_advances(self):
        manager = self.make()
        replacement = manager.report_failure(now=1.0)
        assert replacement == "v1.example"
        assert manager.active == "v1.example"

    def test_failover_wraps_around(self):
        manager = self.make(n=2, max_strikes=5)
        manager.report_failure(1.0)
        manager.report_failure(2.0)
        assert manager.active == "v0.example"

    def test_struck_out_server_skipped(self):
        manager = self.make(n=2, max_strikes=1)
        assert manager.report_failure(1.0) == "v1.example"
        # v0 is out; failing v1 exhausts the pool.
        assert manager.report_failure(2.0) is None
        assert manager.exhausted

    def test_exhausted_active_raises(self):
        manager = self.make(n=1, max_strikes=1)
        manager.report_failure(1.0)
        with pytest.raises(SourcesExhaustedError):
            _ = manager.active

    def test_candidates_merge_without_duplicates(self):
        manager = self.make(n=2)
        manager.set_candidates(["v1.example", "v9.example"])
        assert manager.addresses() == ["v0.example", "v1.example", "v9.example"]

    def test_empty_candidates_rejected(self):
        with pytest.raises(SourcesExhaustedError):
            SourceManager("n").set_candidates([])

    def test_failover_log(self):
        manager = self.make()
        manager.report_failure(5.0)
        assert manager.failover_log == [(5.0, "v0.example", "v1.example")]

    def test_single_server_retry_until_struck_out(self):
        manager = self.make(n=1, max_strikes=2)
        assert manager.report_failure(1.0) == "v0.example"  # retry once
        assert manager.report_failure(2.0) is None


class TestPathState:
    def make(self):
        sources = SourceManager("wifi-net")
        sources.set_candidates(["v0"])
        return PathState(0, "wlan0", "wifi-net", sources)

    def test_lifecycle_happy_path(self):
        path = self.make()
        path.begin_bootstrap(1.0)
        assert path.phase is PathPhase.BOOTSTRAPPING
        path.bootstrap_complete(2.0)
        assert path.phase is PathPhase.READY and path.can_fetch
        path.chunk_started(2.5)
        assert path.phase is PathPhase.FETCHING and not path.can_fetch
        path.chunk_finished(3.0)
        assert path.phase is PathPhase.READY
        assert path.chunks_completed == 1

    def test_bootstrap_timestamps(self):
        path = self.make()
        path.begin_bootstrap(1.0)
        path.bootstrap_complete(4.0, json_completed_at=3.0)
        assert path.bootstrap_duration() == pytest.approx(2.0)  # psi at JSON decode

    def test_first_video_byte_timestamp(self):
        path = self.make()
        path.begin_bootstrap(1.0)
        path.bootstrap_complete(2.0)
        path.chunk_started(2.5)
        path.chunk_finished(4.0, first_byte_at=3.0)
        assert path.first_packet_delay() == pytest.approx(2.0)  # pi at first byte

    def test_first_video_byte_kept_from_first_chunk(self):
        path = self.make()
        path.begin_bootstrap(0.0)
        path.bootstrap_complete(1.0)
        path.chunk_started(1.0)
        path.chunk_finished(2.0, first_byte_at=1.5)
        path.chunk_started(2.0)
        path.chunk_finished(3.0, first_byte_at=2.5)
        assert path.t_first_video_byte == 1.5

    def test_invalid_transition_rejected(self):
        path = self.make()
        with pytest.raises(PlayerError):
            path.chunk_started(0.0)  # not READY yet

    def test_broken_then_rebootstrap(self):
        path = self.make()
        path.begin_bootstrap(0.0)
        path.bootstrap_complete(1.0)
        path.chunk_started(1.0)
        path.mark_broken(2.0)
        assert path.phase is PathPhase.BROKEN
        assert path.consecutive_failures == 1
        path.begin_bootstrap(2.1)
        assert path.phase is PathPhase.BOOTSTRAPPING

    def test_dead_and_revive(self):
        path = self.make()
        path.begin_bootstrap(0.0)
        path.mark_broken(0.5)
        path.mark_dead(1.0)
        assert not path.alive
        path.revive(5.0)
        assert path.phase is PathPhase.INIT
        path.begin_bootstrap(5.0)

    def test_history_is_time_ordered(self):
        path = self.make()
        path.begin_bootstrap(0.0)
        path.bootstrap_complete(1.0)
        path.chunk_started(1.5)
        path.chunk_finished(2.0)
        times = [t for t, _ in path.history]
        assert times == sorted(times)

    def test_success_resets_failure_streak(self):
        path = self.make()
        path.begin_bootstrap(0.0)
        path.mark_broken(0.5)
        path.begin_bootstrap(0.6)
        path.bootstrap_complete(1.0)
        path.chunk_started(1.0)
        path.chunk_finished(2.0)
        assert path.consecutive_failures == 0
