"""Incremental HTTP/1.1 parser: chunking invariance is the core property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HTTPParseError
from repro.http.h1 import H1Parser
from repro.http.messages import Request, Response


def feed_in_pieces(parser, payload: bytes, cut_points: list[int]):
    """Feed payload split at the given sorted offsets."""
    messages = []
    previous = 0
    for cut in sorted(set(cut_points)):
        cut = min(cut, len(payload))
        messages.extend(parser.feed(payload[previous:cut]))
        previous = cut
    messages.extend(parser.feed(payload[previous:]))
    return messages


class TestRequestParsing:
    def test_simple_get(self):
        parser = H1Parser(role="request")
        raw = b"GET /videoinfo?v=abc HTTP/1.1\r\nHost: x\r\n\r\n"
        (message,) = parser.feed(raw)
        assert message.method == "GET"
        assert message.target == "/videoinfo?v=abc"
        assert message.headers["host"] == "x"

    def test_request_with_body(self):
        parser = H1Parser(role="request")
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        (message,) = parser.feed(raw)
        assert message.body == b"hello"

    def test_byte_at_a_time(self):
        raw = Request.get("/v?x=1", "h").encode()
        parser = H1Parser(role="request")
        messages = feed_in_pieces(parser, raw, list(range(len(raw))))
        assert len(messages) == 1
        assert messages[0].target == "/v?x=1"

    def test_pipelined_requests(self):
        parser = H1Parser(role="request")
        raw = Request.get("/a", "h").encode() + Request.get("/b", "h").encode()
        messages = parser.feed(raw)
        assert [m.target for m in messages] == ["/a", "/b"]

    def test_malformed_request_line(self):
        parser = H1Parser(role="request")
        with pytest.raises(HTTPParseError):
            parser.feed(b"NONSENSE\r\n\r\n")

    def test_header_folding_rejected(self):
        parser = H1Parser(role="request")
        raw = b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"
        with pytest.raises(HTTPParseError):
            parser.feed(raw)

    def test_chunked_encoding_rejected(self):
        parser = H1Parser(role="request")
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HTTPParseError):
            parser.feed(raw)

    def test_oversized_header_block_rejected(self):
        parser = H1Parser(role="request")
        with pytest.raises(HTTPParseError):
            parser.feed(b"GET / HTTP/1.1\r\nX: " + b"a" * 70_000)


class TestResponseParsing:
    def test_simple_response(self):
        parser = H1Parser(role="response")
        raw = Response(200, body=b"hello world").encode()
        (message,) = parser.feed(raw)
        assert message.status == 200
        assert message.body == b"hello world"

    def test_bodiless_204(self):
        parser = H1Parser(role="response")
        raw = b"HTTP/1.1 204 No Content\r\n\r\n"
        (message,) = parser.feed(raw)
        assert message.status == 204 and message.body == b""

    def test_head_response_skips_body(self):
        parser = H1Parser(role="response")
        parser.expect_head_response()
        raw = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n"
        (message,) = parser.feed(raw)
        assert message.body == b""

    def test_missing_content_length_rejected(self):
        parser = H1Parser(role="response")
        with pytest.raises(HTTPParseError):
            parser.feed(b"HTTP/1.1 200 OK\r\n\r\n")

    def test_to_response_roundtrip(self):
        original = Response(206, {"Content-Range": "bytes 0-9/100"}, body=b"0123456789")
        parser = H1Parser(role="response")
        (message,) = parser.feed(original.encode())
        recovered = message.to_response()
        assert recovered.status == 206
        assert recovered.body == original.body
        assert recovered.headers["content-range"] == "bytes 0-9/100"

    def test_to_request_on_response_rejected(self):
        parser = H1Parser(role="response")
        (message,) = parser.feed(Response(200, body=b"x").encode())
        with pytest.raises(HTTPParseError):
            message.to_request()


class TestChunkingInvariance:
    """The payoff property: message boundaries never depend on read sizes."""

    @settings(max_examples=60, deadline=None)
    @given(
        bodies=st.lists(st.binary(max_size=200), min_size=1, max_size=4),
        cuts=st.lists(st.integers(min_value=0, max_value=4000), max_size=12),
    )
    def test_responses_reassemble_identically(self, bodies, cuts):
        payload = b"".join(Response(200, body=body).encode() for body in bodies)
        parser = H1Parser(role="response")
        messages = feed_in_pieces(parser, payload, cuts)
        assert [m.body for m in messages] == bodies

    @settings(max_examples=40, deadline=None)
    @given(
        targets=st.lists(
            st.text(alphabet="abc123/", min_size=1, max_size=12).map(lambda s: "/" + s),
            min_size=1,
            max_size=4,
        ),
        cuts=st.lists(st.integers(min_value=0, max_value=2000), max_size=10),
    )
    def test_requests_reassemble_identically(self, targets, cuts):
        payload = b"".join(Request.get(t, "h").encode() for t in targets)
        parser = H1Parser(role="request")
        messages = feed_in_pieces(parser, payload, cuts)
        assert [m.target for m in messages] == targets

    def test_invalid_role(self):
        with pytest.raises(HTTPParseError):
            H1Parser(role="datagram")
