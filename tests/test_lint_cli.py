"""CLI, waiver, baseline, and JSON-format behaviour of ``repro lint``.

Exit-code contract (shared with every ``repro`` sub-command): 0 — no
unbaselined findings; 1 — findings to fix; 2 — usage error.  ``main()``
returns codes, never raises SystemExit.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import run_lint
from repro.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import JSON_SCHEMA_VERSION
from repro.errors import ConfigError

BAD_NET_MODULE = textwrap.dedent(
    """
    import random

    class Unslotted:
        pass
    """
)


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    """An isolated cwd so the default baseline path never hits the repo's."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------


class TestWaivers:
    def test_same_line_waiver_suppresses_named_rule(self, tmp_path):
        target = write_module(
            tmp_path,
            "net/mod.py",
            """
            import random  # deliberate: doc example  # replint: disable=DET001

            class Unslotted:
                pass
            """,
        )
        report = run_lint([target], root=tmp_path)
        assert {f.rule for f in report.findings} == {"SLT001"}
        assert report.waived == 1

    def test_waiver_only_covers_its_own_line(self, tmp_path):
        target = write_module(
            tmp_path,
            "net/mod.py",
            """
            import random  # replint: disable=DET001
            import uuid
            """,
        )
        report = run_lint([target], root=tmp_path)
        assert len(report.findings) == 1
        assert report.findings[0].context == "import uuid"

    def test_file_wide_waiver(self, tmp_path):
        target = write_module(
            tmp_path,
            "net/mod.py",
            """
            # compatibility shim  # replint: disable-file=SLT001

            class One:
                pass

            class Two:
                pass
            """,
        )
        report = run_lint([target], root=tmp_path)
        assert report.clean
        assert report.waived == 2

    def test_disable_all(self, tmp_path):
        target = write_module(
            tmp_path,
            "net/mod.py",
            """
            import random  # replint: disable=all
            """,
        )
        report = run_lint([target], root=tmp_path)
        assert report.clean and report.waived == 1


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_grandfathers_then_resurfaces(self, tmp_path):
        target = write_module(tmp_path, "net/mod.py", BAD_NET_MODULE)
        first = run_lint([target], root=tmp_path)
        assert len(first.findings) == 2

        baseline_path = tmp_path / "replint-baseline.json"
        assert write_baseline(baseline_path, first.findings) == 2

        baseline = load_baseline(baseline_path)
        second = run_lint([target], root=tmp_path, baseline=baseline)
        assert second.clean
        assert second.baselined == 2
        assert second.stale_baseline == []

        # Moving the offending line does NOT resurface it (line numbers
        # are display-only in the baseline key)...
        write_module(tmp_path, "net/mod.py", "\n\n" + BAD_NET_MODULE)
        moved = run_lint([target], root=tmp_path, baseline=load_baseline(baseline_path))
        assert moved.clean and moved.baselined == 2

        # ...but editing the line itself does, and the old entry goes stale.
        write_module(
            tmp_path,
            "net/mod.py",
            """
            import random as _rng

            class Unslotted:
                pass
            """,
        )
        edited = run_lint([target], root=tmp_path, baseline=load_baseline(baseline_path))
        assert [f.context for f in edited.findings] == ["import random as _rng"]
        assert edited.baselined == 1
        assert edited.stale_baseline == [("DET001", "net/mod.py", "import random")]

    def test_identical_lines_fold_into_a_multiset(self, tmp_path):
        target = write_module(
            tmp_path,
            "sim/mod.py",
            """
            import time

            def a():
                return time.time()

            def b():
                return time.time()
            """,
        )
        first = run_lint([target], root=tmp_path)
        assert len(first.findings) == 2
        baseline_path = tmp_path / "b.json"
        write_baseline(baseline_path, first.findings)
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert len(payload["findings"]) == 1
        assert payload["findings"][0]["count"] == 2
        # Two baselined, a third new occurrence is fresh.
        write_module(
            tmp_path,
            "sim/mod.py",
            """
            import time

            def a():
                return time.time()

            def b():
                return time.time()

            def c():
                return time.time()
            """,
        )
        report = run_lint(
            [target], root=tmp_path, baseline=load_baseline(baseline_path)
        )
        assert len(report.findings) == 1 and report.baselined == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="unreadable baseline"):
            load_baseline(bad)
        versioned = tmp_path / "versioned.json"
        versioned.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ConfigError, match="expected version"):
            load_baseline(versioned)

    def test_empty_baseline_applies_cleanly(self):
        fresh, baselined, stale = Baseline().apply([])
        assert fresh == [] and baselined == 0 and stale == []


# ---------------------------------------------------------------------------
# CLI exit codes and output formats
# ---------------------------------------------------------------------------


class TestCLI:
    def test_exit_zero_on_clean_tree(self, workdir, capsys):
        write_module(workdir, "src/live/mod.py", "x = 1\n")
        assert main(["lint", "src"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s) in 1 file(s)" in out

    def test_exit_one_on_findings(self, workdir, capsys):
        write_module(workdir, "src/net/mod.py", BAD_NET_MODULE)
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "net/mod.py:2:0: DET001" in out
        assert "2 finding(s) in 1 file(s) (0 baselined, 0 waived)" in out

    def test_exit_two_on_missing_path(self, workdir, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, workdir, capsys):
        write_module(workdir, "src/mod.py", "x = 1\n")
        assert main(["lint", "src", "--select", "NOPE01"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_exit_two_on_unknown_flag(self, workdir, capsys):
        assert main(["lint", "--bogus"]) == 2

    def test_json_format_schema(self, workdir, capsys):
        write_module(workdir, "src/net/mod.py", BAD_NET_MODULE)
        assert main(["lint", "src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["counts"] == {"total": 2, "baselined": 0, "waived": 0}
        assert [f["rule"] for f in payload["findings"]] == ["DET001", "SLT001"]
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message", "context"}
        assert first["path"].endswith("net/mod.py") and first["line"] == 2

    def test_select_comma_and_repeat(self, workdir, capsys):
        write_module(workdir, "src/net/mod.py", BAD_NET_MODULE)
        assert main(["lint", "src", "--select", "det001,SLT001"]) == 1
        assert main(["lint", "src", "--select", "DET002"]) == 0
        capsys.readouterr()

    def test_write_baseline_then_clean(self, workdir, capsys):
        write_module(workdir, "src/net/mod.py", BAD_NET_MODULE)
        assert main(["lint", "src", "--write-baseline"]) == 0
        err = capsys.readouterr().err
        assert "wrote 2 baseline entries" in err
        assert (workdir / "replint-baseline.json").exists()
        # The default baseline path now grandfathers both findings...
        assert main(["lint", "src"]) == 0
        assert "(2 baselined, 0 waived)" in capsys.readouterr().out
        # ...and --no-baseline reports them again.
        assert main(["lint", "src", "--no-baseline"]) == 1

    def test_stale_baseline_reported(self, workdir, capsys):
        write_module(workdir, "src/net/mod.py", BAD_NET_MODULE)
        assert main(["lint", "src", "--write-baseline"]) == 0
        write_module(workdir, "src/net/mod.py", "x = 1\n")
        assert main(["lint", "src"]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_list_rules(self, workdir, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "KER001", "SLT001", "WRK001"):
            assert rule_id in out

    def test_standalone_entry_point(self, workdir, capsys):
        from repro.lint.cli import main as lint_main

        write_module(workdir, "src/net/mod.py", BAD_NET_MODULE)
        assert lint_main(["src", "--select", "DET001"]) == 1
        capsys.readouterr()
