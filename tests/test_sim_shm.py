"""Shared-memory outcome collection: arena, IPC modes, crash cleanup.

The shm path is the process backend's default, so its acceptance bar is
the same byte-identity the pickle path earned in PR-1/PR-2 — plus a
lifecycle guarantee: however a campaign ends (cleanly, one broken pool,
two broken pools), no ``/dev/shm`` segment survives it and the resource
tracker has nothing to complain about at interpreter exit.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from conftest import assert_batches_identical
from repro.core.config import PlayerConfig
from repro.errors import ConfigError
from repro.sim.campaign import Campaign, OutcomeBatch
from repro.sim.execution import ProcessEngine, SerialEngine
from repro.sim.profiles import testbed_profile
from repro.sim.runner import TrialRunner
from repro.sim.scenario import ScenarioConfig
from repro.sim.shm import ARENA_PREFIX, OutcomeArena, collect_trials, resolve_ipc

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SHM_DIR = "/dev/shm"

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="no /dev/shm to inspect on this platform"
)


def _arena_segments() -> set[str]:
    return {f for f in os.listdir(SHM_DIR) if f.startswith(ARENA_PREFIX)}


def short_config() -> ScenarioConfig:
    return ScenarioConfig(video_duration_s=120.0)


def _runner(engine) -> TrialRunner:
    return TrialRunner(
        testbed_profile, scenario_config=short_config(), trials=4, engine=engine
    )


def _kill_worker(scenario) -> None:
    """Module-level (picklable) hook that hard-kills the worker."""
    os._exit(13)


class TestIpcResolution:
    def test_default_is_shm(self, monkeypatch):
        monkeypatch.delenv("REPRO_IPC", raising=False)
        assert resolve_ipc() == "shm"
        assert ProcessEngine(2).ipc == "shm"

    def test_env_var_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_IPC", "pickle")
        assert resolve_ipc() == "pickle"
        assert ProcessEngine(2).ipc == "pickle"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_IPC", "pickle")
        assert ProcessEngine(2, ipc="shm").ipc == "shm"

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="ipc"):
            resolve_ipc("arrow")
        with pytest.raises(ConfigError, match="ipc"):
            ProcessEngine(2, ipc="mmap")


class TestArenaLifecycle:
    @needs_dev_shm
    def test_create_write_destroy(self):
        before = _arena_segments()
        arena = OutcomeArena.create(3)
        assert arena.name.startswith(ARENA_PREFIX)
        created = _arena_segments() - before
        assert len(created) == 1
        arena.destroy()
        assert _arena_segments() == before

    @needs_dev_shm
    def test_destroy_is_idempotent(self):
        arena = OutcomeArena.create(1)
        arena.destroy()
        arena.destroy()  # second destroy of an unlinked arena: no-op

    def test_zero_row_arena_supported(self):
        # A campaign never collects zero specs through shm, but the
        # arena must not trip on the degenerate size (segments of zero
        # bytes are invalid at the OS level).
        arena = OutcomeArena.create(0)
        try:
            assert all(len(col) == 0 for col in arena.read_columns().values())
        finally:
            arena.destroy()

    def test_attach_sees_writes(self):
        serial = SerialEngine()
        runner = _runner(serial)
        outcomes = serial.map(runner.specs_for("att", runner.msplayer(PlayerConfig())))
        arena = OutcomeArena.create(len(outcomes))
        attached = None
        try:
            attached = OutcomeArena.attach(arena.name, len(outcomes))
            for i, outcome in enumerate(outcomes):
                attached.write(i, outcome)
            dense = arena.read_columns()
            assert dense["finished_at"].tolist() == [o.finished_at for o in outcomes]
            assert dense["failovers"].tolist() == [
                o.metrics.failovers for o in outcomes
            ]
        finally:
            if attached is not None:
                attached.close()
            arena.destroy()


class TestEngineCollection:
    """collect() shapes, laziness, and cross-mode byte-identity."""

    def test_serial_conditions_are_not_columnar(self):
        engine = ProcessEngine(2, ipc="shm")
        runner = _runner(engine)
        specs = runner.specs_for("one", runner.msplayer(PlayerConfig()))[:1]
        collection = engine.collect(specs)  # single spec: in-process path
        assert not collection.columnar
        assert len(collection) == 1

    def test_shm_collection_is_columnar_and_lazy(self):
        engine = ProcessEngine(2, ipc="shm")
        runner = _runner(engine)
        specs = runner.specs_for("col", runner.msplayer(PlayerConfig()))
        collection = engine.collect(specs)
        assert collection.columnar
        assert collection._outcomes is None  # nothing materialized yet
        reference = SerialEngine().map(specs)
        assert collection.outcomes == reference  # deep dataclass equality
        assert collection._outcomes is not None

    def test_pickle_collection_is_not_columnar(self):
        engine = ProcessEngine(2, ipc="pickle")
        runner = _runner(engine)
        specs = runner.specs_for("pk", runner.msplayer(PlayerConfig()))
        collection = engine.collect(specs)
        assert not collection.columnar
        assert collection.outcomes == SerialEngine().map(specs)

    def test_map_identical_across_modes(self):
        runner = _runner(SerialEngine())
        specs = runner.specs_for("modes", runner.msplayer(PlayerConfig()))
        serial = SerialEngine().map(specs)
        assert ProcessEngine(2, ipc="shm").map(specs) == serial
        assert ProcessEngine(2, ipc="pickle").map(specs) == serial

    def test_auto_fallback_for_closures_is_not_columnar(self):
        from repro.sim.driver import MSPlayerDriver

        def closure_factory(scenario):
            return MSPlayerDriver(scenario, PlayerConfig(), stop="prebuffer")

        engine = ProcessEngine(2, fallback_to_serial=True, ipc="shm")
        runner = _runner(engine)
        collection = engine.collect(runner.specs_for("cl", closure_factory))
        assert not collection.columnar
        assert len(collection) == 4

    def test_collect_trials_wraps_plain_engines(self):
        runner = _runner(SerialEngine())
        specs = runner.specs_for("wrap", runner.msplayer(PlayerConfig()))
        collection = collect_trials(SerialEngine(), specs)
        assert not collection.columnar
        assert collection.outcomes == SerialEngine().map(specs)

    def test_campaign_shm_results_preassembled_and_lazy(self):
        runner = _runner(SerialEngine())  # the runner only builds specs here
        campaign = Campaign(engine=ProcessEngine(2, ipc="shm"))
        campaign.add_run(runner, "lazy", runner.msplayer(PlayerConfig()))
        result = campaign.run()["lazy"]
        # The batch came straight off the arena columns...
        assert result._batch is not None
        assert result._outcomes is None
        # ...and equals the object-built batch exactly.
        serial = _runner(SerialEngine()).run("lazy", runner.msplayer(PlayerConfig()))
        assert_batches_identical(result.batch, serial.batch)
        # Walking .outcomes materializes and matches, and the batch
        # cache survives (same length, no rebuild).
        assert result.outcomes == serial.outcomes
        assert result._batch is not None
        assert_batches_identical(
            OutcomeBatch.from_outcomes(result.outcomes), result.batch
        )


class TestCrashCleanup:
    """Worker crashes must not leak segments — and retries still work."""

    JOBS = 2

    @needs_dev_shm
    def test_crash_unlinks_all_segments_and_fresh_pool_recovers(self):
        from concurrent.futures.process import BrokenProcessPool

        from repro.sim import execution

        before = _arena_segments()
        engine = ProcessEngine(self.JOBS, ipc="shm")
        runner = _runner(engine)
        # Killer specs break the fresh retry pool too: the engine
        # re-raises, but the arena (both attempts') must be gone.
        with pytest.raises(BrokenProcessPool):
            runner.run(
                "killer", runner.msplayer(PlayerConfig()), scenario_hook=_kill_worker
            )
        assert _arena_segments() == before
        assert self.JOBS not in execution._POOLS

        # The same engine keeps working on a fresh fork, byte-identical
        # to a serial run.
        healthy = runner.run("healthy", runner.msplayer(PlayerConfig()))
        reference = _runner(SerialEngine()).run(
            "healthy", runner.msplayer(PlayerConfig())
        )
        assert healthy.outcomes == reference.outcomes
        assert _arena_segments() == before

    @needs_dev_shm
    def test_single_break_retry_reuses_arena_and_cleans_up(self, monkeypatch):
        """First map attempt dies on a simulated broken pool; the retry
        rewrites every arena row on a fresh fork and the caller sees
        correct results with no leftover segments."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.sim import execution

        class _BrokenOnce:
            def map(self, fn, specs, chunksize=1):
                raise BrokenProcessPool("simulated dead executor")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setitem(execution._POOLS, self.JOBS, _BrokenOnce())
        before = _arena_segments()
        engine = ProcessEngine(self.JOBS, ipc="shm")
        runner = _runner(engine)
        result = runner.run("recovered", runner.msplayer(PlayerConfig()))
        reference = _runner(SerialEngine()).run(
            "recovered", runner.msplayer(PlayerConfig())
        )
        assert result.outcomes == reference.outcomes
        assert _arena_segments() == before

    def test_no_resource_tracker_leak_warnings(self):
        """A fresh interpreter that crashes a campaign mid-flight and
        then runs a healthy one must exit with a clean stderr — no
        ``resource_tracker`` "leaked shared_memory objects" warnings,
        no stray tracebacks from tracker bookkeeping."""
        code = (
            "import os, sys\n"
            "from concurrent.futures.process import BrokenProcessPool\n"
            "from repro.core.config import PlayerConfig\n"
            "from repro.sim.execution import ProcessEngine\n"
            "from repro.sim.profiles import testbed_profile\n"
            "from repro.sim.runner import TrialRunner\n"
            "from repro.sim.scenario import ScenarioConfig\n"
            "def kill(scenario):\n"
            "    os._exit(13)\n"
            "runner = TrialRunner(testbed_profile,\n"
            "    scenario_config=ScenarioConfig(video_duration_s=120.0),\n"
            "    trials=4, engine=ProcessEngine(2, ipc='shm'))\n"
            "try:\n"
            "    runner.run('killer', runner.msplayer(PlayerConfig()), scenario_hook=kill)\n"
            "except BrokenProcessPool:\n"
            "    pass\n"
            "else:\n"
            "    sys.exit(3)\n"
            "healthy = runner.run('healthy', runner.msplayer(PlayerConfig()))\n"
            "assert len(healthy.outcomes) == 4\n"
            "print('OK')\n"
        )
        env = {**os.environ, "PYTHONPATH": SRC_DIR}
        env.pop("REPRO_IPC", None)
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        for marker in ("leaked shared_memory", "resource_tracker", "Traceback"):
            assert marker not in proc.stderr, proc.stderr


class TestCliIpcFlag:
    def test_ipc_flag_scoped_to_the_invocation(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_IPC", raising=False)
        # x3 is a single-pass experiment — the flag must still be
        # accepted (and validated) uniformly across experiment ids.
        assert main(["experiment", "x3", "--ipc", "pickle"]) == 0
        # ...and must not leak past the run for in-process callers.
        assert "REPRO_IPC" not in os.environ

    def test_ipc_flag_overrides_env_then_restores_it(self, capsys, monkeypatch):
        from repro.cli import main

        # A broken env value fails --jobs validation (engine
        # construction resolves the ipc mode)...
        monkeypatch.setenv("REPRO_IPC", "bogus")
        assert main(["experiment", "fig2", "--trials", "2", "--jobs", "2"]) == 2
        # ...but --ipc overrides it for the run, which proves the flag
        # is actually live while the campaign executes — and the prior
        # env value (however broken) is restored afterwards.
        assert (
            main(["experiment", "fig2", "--trials", "2", "--jobs", "2", "--ipc", "shm"])
            == 0
        )
        assert os.environ["REPRO_IPC"] == "bogus"

    def test_invalid_ipc_rejected_by_parser(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig2", "--ipc", "arrow"])
