"""Package metadata for the MSPlayer (CoNEXT'14) reproduction."""

import os

from setuptools import Extension, find_packages, setup

setup(
    name="repro-msplayer",
    # Best-effort compiled event-kernel core: `optional` means a missing
    # or broken C toolchain degrades the build to pure python instead of
    # failing it; repro.net.calendar falls back at import when the
    # extension is absent (REPRO_KERNEL=compiled then runs the python
    # calendar queue).  Build in place with
    # `python setup.py build_ext --inplace`.
    ext_modules=[
        Extension(
            "repro.net._ckernel",
            sources=["src/repro/net/_ckernel.c"],
            optional=True,
        )
    ],
    version="0.2.0",
    description=(
        "Reproduction of 'MSPlayer: Multi-Source and multi-Path "
        "LeverAged YoutubER' (CoNEXT 2014): discrete-event simulator, "
        "players, schedulers, and the paper's experiment campaigns"
    ),
    # ROADMAP.md is absent from sdists (setuptools only auto-includes
    # README*); fall back so installs from a tarball don't crash.
    long_description=(
        open("ROADMAP.md", encoding="utf-8").read()
        if os.path.exists("ROADMAP.md")
        else "MSPlayer (CoNEXT 2014) reproduction."
    ),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        # The simulator's only runtime dependency: seeded substreams
        # (PCG64 / SeedSequence) and the analysis layer's statistics.
        "numpy>=1.22",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "hypothesis>=6.0",
        ],
        "bench": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
        ],
        # The static-analysis toolchain (CI's static-analysis job and
        # the pre-commit hooks).  `repro lint` itself is stdlib-only;
        # mypy drives the strict-typing ratchet and ruff the style
        # families selected in pyproject.toml.
        "lint": [
            "mypy>=1.8",
            "ruff>=0.4",
        ],
        # The study-service front end (repro serve --fastapi).  The
        # broker, workers, and stdlib http.server front end need none
        # of this — the extra only upgrades the HTTP layer.
        "serve": [
            "fastapi>=0.100",
            "uvicorn>=0.23",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
    ],
)
