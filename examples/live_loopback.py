#!/usr/bin/env python
"""MSPlayer over real sockets: the asyncio loopback testbed.

Starts a WiFi-like network (1.5 MB/s, 8 ms RTT) and an LTE-like network
(0.9 MB/s, 24 ms RTT) on 127.0.0.1 — each with a web proxy and two
token-checking video servers — then streams a (copyrighted!) video with
the same sans-IO player core the simulator uses: real TCP, real HTTP
parsing, real signature decipher, real clock.

Run:  python examples/live_loopback.py
"""

from __future__ import annotations

import asyncio

from repro.core.config import PlayerConfig
from repro.live import LiveTestbed, PathShape, run_live_session


async def main() -> None:
    testbed = LiveTestbed(
        shapes=(
            PathShape(name="wifi", rate=1_500_000.0, one_way_delay=0.004),
            PathShape(name="lte", rate=900_000.0, one_way_delay=0.012),
        ),
        video_servers_per_network=2,
        video_duration_s=30.0,
        copyrighted=True,  # exercises the decoder-page detour (footnote 1)
    )
    await testbed.start()
    print("loopback CDN up:")
    for network_id, pool in testbed.video_servers.items():
        addresses = ", ".join(server.address for server in pool)
        print(f"  {network_id:9s} video servers: {addresses}")
    print(f"  proxies: {', '.join(testbed.proxy_addresses)}\n")

    config = PlayerConfig(
        prebuffer_s=6.0,
        low_watermark_s=2.0,
        rebuffer_fetch_s=3.0,
        itag=18,  # 360p keeps the demo snappy on shaped loopback
        base_chunk_bytes=32 * 1024,
    )
    try:
        outcome = await run_live_session(
            testbed, config, stop="cycles", target_cycles=1, timeout_s=60.0
        )
    finally:
        await testbed.stop()

    metrics = outcome.metrics
    print(f"session                : {outcome.stop_reason} "
          f"({outcome.wall_seconds:.2f} s wall clock)")
    print(f"start-up delay (6 s)   : {metrics.startup_delay:.3f} s")
    print(f"requests per path      : {outcome.requests_by_path}")
    print(
        "traffic over wifi-like : "
        f"pre-buffering {metrics.traffic_fraction(0, 'prebuffer'):.1%}"
    )
    cycles = metrics.completed_cycle_durations()
    if cycles:
        print(f"first refill cycle     : {cycles[0]:.3f} s")
    print(f"peak out-of-order      : {outcome.peak_out_of_order} (goal: <= 1)")


if __name__ == "__main__":
    asyncio.run(main())
