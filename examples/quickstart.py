#!/usr/bin/env python
"""Quickstart: stream one video with MSPlayer on the simulated testbed.

Builds the §5 world (two networks, each with a web proxy and two video
servers; a client with WiFi + LTE interfaces), plays 40 seconds of
pre-buffering plus a stretch of steady-state playback, and prints the
QoE numbers the paper reports.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import MSPlayerDriver, PlayerConfig, Scenario, testbed_profile
from repro.sim.scenario import ScenarioConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    # A 3-minute 720p clip (constant bitrate; the paper does not adapt).
    scenario = Scenario(
        testbed_profile(),
        seed=seed,
        config=ScenarioConfig(video_duration_s=180.0),
    )

    # Paper defaults: harmonic-mean scheduler, 256 KB initial chunks,
    # 40 s pre-buffer, resume fetching below 10 s, fetch 20 s per cycle.
    config = PlayerConfig()

    driver = MSPlayerDriver(scenario, config, stop="cycles", target_cycles=2)
    outcome = driver.run()
    metrics = outcome.metrics

    print("MSPlayer quickstart (simulated §5 testbed)")
    print("=" * 52)
    print(f"seed                     : {seed}")
    print(f"scheduler                : {config.scheduler} / {config.base_chunk_bytes // 1024} KB")
    print(f"start-up delay (40 s pre): {metrics.startup_delay:6.2f} s")
    for path_id, name in ((0, "wifi"), (1, "lte ")):
        json_delay = outcome.path_json_delay.get(path_id)
        first_video = outcome.path_first_video_delay.get(path_id)
        print(
            f"path {path_id} ({name}) bootstrap  : "
            f"json {json_delay * 1000:6.1f} ms, first video byte {first_video * 1000:6.1f} ms"
        )
    print(
        "traffic over WiFi        : "
        f"pre-buffering {metrics.traffic_fraction(0, 'prebuffer'):.1%}, "
        f"re-buffering {metrics.traffic_fraction(0, 'rebuffer'):.1%}"
    )
    cycles = metrics.completed_cycle_durations()
    print(f"re-buffer cycles         : {len(cycles)} completed, "
          f"mean refill {sum(cycles) / len(cycles):.2f} s")
    print(f"range requests           : {outcome.requests_by_path}")
    print(f"stalls                   : {len(metrics.stalls)} "
          f"({metrics.total_stall_time:.2f} s total)")
    print(f"peak out-of-order chunks : {outcome.peak_out_of_order} (design goal: <= 1)")


if __name__ == "__main__":
    main()
