#!/usr/bin/env python
"""Start-up latency study on the wide-area "YouTube" profile (Fig. 4).

Compares MSPlayer against single-path WiFi and LTE commercial-player
emulations (one big pre-buffer request each) for 20/40/60-second
pre-buffers — the paper's Fig. 4 as terminal output, driven through the
declarative Study API: one line selects the registered experiment,
validates the knobs against its typed schema, and submits every
configuration's trials as a single interleaved campaign.

Run:  python examples/youtube_startup.py [trials]
"""

from __future__ import annotations

import sys

from repro.study import Study


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    print(f"Fig. 4 reproduction — {trials} trials per configuration")
    print("(paper: MSPlayer cuts start-up by 12/21/28 % vs best single path)\n")

    result = Study("fig4", trials=trials, seed=42).run()
    print(result.rendered)

    for duration, numbers in result.only().result.raw.items():
        print(
            f"pre-buffer {duration}: MSPlayer reduction vs best single "
            f"path {numbers['reduction']:.0%}"
        )


if __name__ == "__main__":
    main()
