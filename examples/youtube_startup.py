#!/usr/bin/env python
"""Start-up latency study on the wide-area "YouTube" profile (Fig. 4).

Compares MSPlayer against single-path WiFi and LTE commercial-player
emulations (one big pre-buffer request each) for 20/40/60-second
pre-buffers, printing a boxplot panel per duration — the paper's Fig. 4
as terminal output.

Run:  python examples/youtube_startup.py [trials]
"""

from __future__ import annotations

import sys

from repro import PlayerConfig, TrialRunner, youtube_profile
from repro.analysis.tables import render_distribution_rows
from repro.analysis.stats import summarize
from repro.sim.singlepath import HTML5_CHUNK


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    runner = TrialRunner(youtube_profile, root_seed=42, trials=trials)

    print(f"Fig. 4 reproduction — {trials} trials per configuration")
    print("(paper: MSPlayer cuts start-up by 12/21/28 % vs best single path)\n")

    for prebuffer in (20.0, 40.0, 60.0):
        config = PlayerConfig(prebuffer_s=prebuffer)
        samples = [
            (
                "WiFi",
                runner.run(
                    f"wifi-{prebuffer}", runner.singlepath(0, HTML5_CHUNK, config)
                ).startup_delays(),
            ),
            (
                "LTE",
                runner.run(
                    f"lte-{prebuffer}", runner.singlepath(1, HTML5_CHUNK, config)
                ).startup_delays(),
            ),
            (
                "MSPlayer",
                runner.run(f"ms-{prebuffer}", runner.msplayer(config)).startup_delays(),
            ),
        ]
        medians = {label: summarize(values).median for label, values in samples}
        reduction = 1.0 - medians["MSPlayer"] / min(medians["WiFi"], medians["LTE"])
        print(
            render_distribution_rows(
                samples,
                title=f"--- pre-buffer {prebuffer:.0f} s "
                f"(MSPlayer reduction vs best single path: {reduction:.0%}) ---",
            )
        )
        print()


if __name__ == "__main__":
    main()
