#!/usr/bin/env python
"""DASH-style adaptation on MSPlayer's transport (§7 future work).

Streams the same video three times over a constrained two-path link —
once at fixed 720p (the paper's mode), once with a buffer-based
controller, once with a throughput controller — and prints the
quality/stall trade-off plus each session's energy cost (also §7).

Run:  python examples/adaptive_streaming.py [seed]
"""

from __future__ import annotations

import sys

from repro.cdn.videos import FORMATS
from repro.core.config import PlayerConfig
from repro.ext.adaptive import (
    AdaptiveSimDriver,
    BufferBasedController,
    FixedBitrateController,
    ThroughputController,
)
from repro.ext.energy import EnergyModel
from repro.sim.profiles import InterfaceProfile, NetworkProfile
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.units import MS


def constrained_profile() -> NetworkProfile:
    """Aggregate ≈ 3.6 Mb/s mean, dipping below 720p's 2.7 Mb/s."""
    return NetworkProfile(
        name="constrained",
        wifi=InterfaceProfile(
            kind="wifi", mean_mbps=2.4, sigma=0.2, rho=0.8,
            one_way_delay_s=17.5 * MS, markov_states=((1.3, 6.0), (0.45, 4.0)),
        ),
        lte=InterfaceProfile(
            kind="lte", mean_mbps=1.5, sigma=0.3, rho=0.8,
            one_way_delay_s=45.0 * MS, markov_states=((1.3, 5.0), (0.4, 4.0)),
        ),
    )


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    config = PlayerConfig(prebuffer_s=12.0, low_watermark_s=6.0, rebuffer_fetch_s=8.0)
    controllers = {
        "fixed 720p (paper mode)": FixedBitrateController(22),
        "buffer-based (BBA-style)": BufferBasedController(reservoir_s=6.0, cushion_s=16.0),
        "throughput (FESTIVE-style)": ThroughputController(safety=0.7),
    }
    energy_model = EnergyModel()

    print("Adaptive streaming on a constrained two-path link "
          "(aggregate ~3.6 Mb/s, 720p needs 2.7 Mb/s)\n")
    header = (
        f"{'controller':28s} {'stall (s)':>10} {'bitrate':>10} "
        f"{'switches':>9} {'energy (J)':>11}"
    )
    print(header)
    print("-" * len(header))
    histories = {}
    for name, controller in controllers.items():
        scenario = Scenario(
            constrained_profile(), seed=seed, config=ScenarioConfig(video_duration_s=150.0)
        )
        outcome = AdaptiveSimDriver(
            scenario, controller, config, stop="full", max_sim_time=600.0
        ).run()
        joules = energy_model.report(outcome.metrics).total_joules
        histories[name] = outcome.itag_history
        print(
            f"{name:28s} {outcome.metrics.total_stall_time:>10.2f} "
            f"{outcome.mean_bitrate_bps / 1e6:>8.2f}Mb {outcome.switches:>9d} "
            f"{joules:>11.1f}"
        )

    print("\nper-segment quality (itag, 4 s segments):")
    ladder = {18: ".", 22: "o", 37: "#"}  # 360p / 720p / 1080p
    for name, history in histories.items():
        strip = "".join(ladder.get(itag, "?") for itag in history)
        print(f"  {name:28s} {strip}")
    print("  legend: . = 360p   o = 720p   # = 1080p")


if __name__ == "__main__":
    main()
