#!/usr/bin/env python
"""Parameter grids and result archives with the Study API.

Builds a grid over two fig2 parameters (root seed x trial count), runs
every cell as ONE merged pool submission (cells are byte-identical to
running them alone — the grid only changes scheduling), then archives
the StudyResult to a versioned JSON + npz pair and proves the reload
is bit-identical.  Finally reruns and widens the grid against a study
cache (repro.study.cache): the rerun submits zero engine work units
and the widened grid submits only the new cell, bit-identically.

Run:  python examples/study_sweep.py [trials]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.study import Study, StudyResult


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    study = Study("fig2", trials=trials).grid(seed=[2014, 2015])
    print(f"running {len(study)} grid cells as one campaign submission...\n")
    result = study.run()
    print(result.rendered)

    with tempfile.TemporaryDirectory() as tmp:
        json_path, npz_path = result.save(Path(tmp) / "fig2-grid")
        loaded = StudyResult.load(json_path)
        mismatches = result.column_mismatches(loaded)
        print(f"\narchived to {Path(json_path).name} + {Path(npz_path).name}")
        print(
            "archive round-trip: "
            + ("bit-identical" if not mismatches else f"MISMATCH {mismatches}")
        )
        cell = loaded.cell(seed=2015)
        print(f"cell(seed=2015) median reduction: {cell.result.raw['reduction']:.0%}")

    with tempfile.TemporaryDirectory() as cache_dir:
        print("\ncontent-addressed cache demo (Study.run(cache=DIR)):")
        first = study.run(cache=cache_dir)
        print(f"  cold run : {first.cache_info}")
        again = study.run(cache=cache_dir)
        print(f"  rerun    : {again.cache_info}  <- zero work units")
        widened = Study("fig2", trials=trials).grid(seed=[2014, 2015, 2016])
        delta = widened.run(cache=cache_dir)
        print(f"  widened  : {delta.cache_info}  <- only the new cell ran")
        mismatches = first.column_mismatches(again)
        print(
            "  cached vs fresh: "
            + ("bit-identical" if not mismatches else f"MISMATCH {mismatches}")
        )


if __name__ == "__main__":
    main()
