#!/usr/bin/env python
"""Parameter grids and result archives with the Study API.

Builds a grid over two fig2 parameters (root seed x trial count), runs
every cell as ONE merged pool submission (cells are byte-identical to
running them alone — the grid only changes scheduling), then archives
the StudyResult to a versioned JSON + npz pair and proves the reload
is bit-identical.

Run:  python examples/study_sweep.py [trials]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.study import Study, StudyResult


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    study = Study("fig2", trials=trials).grid(seed=[2014, 2015])
    print(f"running {len(study)} grid cells as one campaign submission...\n")
    result = study.run()
    print(result.rendered)

    with tempfile.TemporaryDirectory() as tmp:
        json_path, npz_path = result.save(Path(tmp) / "fig2-grid")
        loaded = StudyResult.load(json_path)
        mismatches = result.column_mismatches(loaded)
        print(f"\narchived to {Path(json_path).name} + {Path(npz_path).name}")
        print(
            "archive round-trip: "
            + ("bit-identical" if not mismatches else f"MISMATCH {mismatches}")
        )
        cell = loaded.cell(seed=2015)
        print(f"cell(seed=2015) median reduction: {cell.result.raw['reduction']:.0%}")


if __name__ == "__main__":
    main()
