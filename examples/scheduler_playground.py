#!/usr/bin/env python
"""Scheduler playground: watch Algorithm 1 react to bandwidth swings.

Feeds the three schedulers (Ratio / EWMA / Harmonic) an identical
scripted throughput trace for two paths — stable, then an LTE collapse,
then recovery with a burst — and prints the chunk-size decisions side
by side.  A compact way to see why the paper picked the harmonic mean:
the burst barely moves it, the collapse halves chunks promptly, and the
recovery doubles them back.

Run:  python examples/scheduler_playground.py
"""

from __future__ import annotations

from repro.core.config import PlayerConfig
from repro.core.schedulers import make_scheduler
from repro.units import KB, format_size

#: (wifi_throughput, lte_throughput) in bytes/s per completed round.
TRACE = (
    [(1_300_000.0, 700_000.0)] * 4  # steady state
    + [(1_300_000.0, 150_000.0)] * 4  # LTE collapses (cell load)
    + [(1_300_000.0, 5_000_000.0)] * 1  # one freak LTE burst
    + [(1_300_000.0, 700_000.0)] * 5  # recovery
)


def main() -> None:
    schedulers = {}
    for name in ("ratio", "ewma", "harmonic"):
        scheduler = make_scheduler(PlayerConfig(scheduler=name, base_chunk_bytes=256 * KB))
        scheduler.register_path(0)
        scheduler.register_path(1)
        schedulers[name] = scheduler

    header = f"{'round':>5} {'wifi w':>9} {'lte w':>9} |"
    for name in schedulers:
        header += f" {name + ' S0':>12} {name + ' S1':>12} |"
    print(header)
    print("-" * len(header))

    for round_index, (wifi_w, lte_w) in enumerate(TRACE):
        row = f"{round_index:>5} {wifi_w / 1e6:>8.2f}M {lte_w / 1e6:>8.2f}M |"
        for name, scheduler in schedulers.items():
            # Each path completed a chunk at its measured throughput:
            # sizes chosen so duration is positive and consistent.
            scheduler.record(0, int(wifi_w), 1.0)
            scheduler.record(1, int(lte_w), 1.0)
            row += (
                f" {format_size(scheduler.chunk_size(0)):>12}"
                f" {format_size(scheduler.chunk_size(1)):>12} |"
            )
        print(row)

    print("\nestimates after the trace:")
    for name, scheduler in schedulers.items():
        wifi_est = scheduler.estimate(0)
        lte_est = scheduler.estimate(1)
        print(
            f"  {name:9s} wifi {wifi_est / 1e6:5.2f} MB/s   "
            f"lte {lte_est / 1e6:5.2f} MB/s"
        )
    print(
        "\nNote how the single 5 MB/s LTE burst (round 8) barely moves the "
        "harmonic estimate\nwhile EWMA and Ratio overshoot — §3.3's rationale."
    )


if __name__ == "__main__":
    main()
