#!/usr/bin/env python
"""Robust data transport under mobility (§2's motivating failure).

Narrates one MSPlayer session through a WiFi outage and a video-server
crash: which servers each path used, when failovers happened, how the
buffer phases evolved, and whether playback ever stalled.  Runs the
single-path WiFi baseline through the same outage for contrast (it
dies — the §2 scenario of walking away from a hotspot).

Run:  python examples/mobility_robustness.py [seed]
"""

from __future__ import annotations

import sys

from repro import MSPlayerDriver, PlayerConfig, Scenario, SinglePathDriver, mobility_profile
from repro.sim.scenario import ScenarioConfig
from repro.sim.singlepath import HTML5_CHUNK

OUTAGE = (15.0, 60.0)


def narrate_msplayer(seed: int) -> None:
    profile = mobility_profile(wifi_down_at=OUTAGE[0], wifi_up_at=OUTAGE[1])
    scenario = Scenario(profile, seed=seed, config=ScenarioConfig(video_duration_s=150.0))
    driver = MSPlayerDriver(scenario, PlayerConfig(), stop="full")
    outcome = driver.run()
    metrics = outcome.metrics
    session = driver.session

    print(f"MSPlayer through a WiFi outage [{OUTAGE[0]:.0f}s, {OUTAGE[1]:.0f}s]")
    print("-" * 60)
    print(f"outcome                : {outcome.stop_reason} at t={outcome.finished_at:.1f}s")
    print(f"start-up delay         : {metrics.startup_delay:.2f} s")
    print(f"stalls                 : {len(metrics.stalls)} ({metrics.total_stall_time:.2f} s)")
    print(f"failovers              : {metrics.failovers}")

    for path_id, path in session.paths.items():
        log = path.sources.failover_log
        print(f"\npath {path_id} ({path.iface_name}, {path.network_id}):")
        print(f"  final phase          : {path.phase.value}")
        print(f"  chunks completed     : {path.chunks_completed}")
        for when, old, new in log:
            print(f"  t={when:6.2f}s failover  : {old} -> {new or 'SOURCES EXHAUSTED'}")
        history = [(t, p.value) for t, p in path.history if p.value in ("dead", "init")]
        for when, phase in history:
            print(f"  t={when:6.2f}s path       : -> {phase}")

    print("\nbuffer phase timeline:")
    for when, phase in session.buffer.transitions[:12]:
        print(f"  t={when:6.2f}s -> {phase.value}")
    if len(session.buffer.transitions) > 12:
        print(f"  ... {len(session.buffer.transitions) - 12} more transitions")


def narrate_baseline(seed: int) -> None:
    profile = mobility_profile(wifi_down_at=OUTAGE[0], wifi_up_at=OUTAGE[1])
    scenario = Scenario(profile, seed=seed, config=ScenarioConfig(video_duration_s=150.0))
    driver = SinglePathDriver(scenario, 0, HTML5_CHUNK, PlayerConfig(), stop="full")
    outcome = driver.run()
    print("\nSingle-path WiFi baseline through the same outage")
    print("-" * 60)
    print(f"outcome                : {outcome.stop_reason}")
    if outcome.metrics.playback_started_at is not None:
        print(f"start-up delay         : {outcome.metrics.startup_delay:.2f} s")
    print(
        "(no second interface, no second source: the session cannot "
        "survive the break — §2's argument for MSPlayer)"
    )


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    narrate_msplayer(seed)
    narrate_baseline(seed)


if __name__ == "__main__":
    main()
