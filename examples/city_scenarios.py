#!/usr/bin/env python
"""City-scale scenario populations with SLO reporting (repro.scenarios).

Runs a small x8 city-diurnal population — mixed VOD/live/adaptive
clients arriving along a compressed diurnal curve against one shared
CDN — then an x9 flash crowd with server brownouts and a crash, and
prints the per-policy SLO panels (start-up tail, rebuffer ratio,
failover rate, load imbalance).  Finally composes a custom scenario
from the declarative ingredients directly: a lunchtime flash crowd over
a Zipf-skewed catalog while a video server browns out under it.

Paper-scale defaults are 200 clients x 2 replicates (run
``repro experiment x8 --jobs auto`` for that); this example stays
example-sized.

Run:  python examples/city_scenarios.py [clients]
"""

from __future__ import annotations

import sys

from repro.scenarios import (
    ArrivalSpec,
    ChurnSpec,
    DiurnalCurve,
    FlashCrowd,
    MixSpec,
    ScenarioExperiment,
    population_slo,
)
from repro.study import run_experiment


def main() -> None:
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print(f"EXP-X8: city diurnal, {clients} clients per policy...\n")
    x8 = run_experiment("x8", replicates=1, clients=clients, catalog=8)
    print(x8.rendered)

    print(f"\nEXP-X9: flash crowd + brownouts, {clients} clients per policy...\n")
    x9 = run_experiment("x9", replicates=1, clients=clients, catalog=8)
    print(x9.rendered)

    print("\ncustom scenario: lunchtime burst over a browning-out server...")
    experiment = ScenarioExperiment(
        arrivals=ArrivalSpec(
            horizon_s=20.0,
            curve=DiurnalCurve(amplitude=1.0, period_s=20.0),
            flash_crowds=(FlashCrowd(at_s=6.0, clients=max(clients // 2, 1)),),
        ),
        mix=MixSpec(catalog_size=8, zipf_s=1.4),
        # One sampled brownout window placed under the burst.
        churn=ChurnSpec(brownouts=1, window_start_s=6.0, window_end_s=14.0),
        client_count=clients,
        seed=2026,
    )
    population = experiment.compare(policies=("rotate",), replicates=1)
    slo = population_slo(population["rotate"].batch)
    print(
        f"  rotate: p95 start-up {slo.p95_startup_s:.2f}s, "
        f"rebuffer ratio {slo.rebuffer_ratio:.4f}, "
        f"completion {slo.completed}/{slo.sessions}"
    )

    print("\nSLO panel keys:", ", ".join(sorted(slo.as_dict())))


if __name__ == "__main__":
    main()
